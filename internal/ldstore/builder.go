package ldstore

import (
	"bufio"
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
)

// BuildOptions configures a tile-store build.
type BuildOptions struct {
	// TileSize is NT, the side of each square tile (default 256). Larger
	// tiles amortize index and seek overhead; smaller tiles sharpen the
	// LRU's working set. NT²×8 bytes must not exceed MaxTileBytes.
	TileSize int
	// Stat selects the statistic to materialize (default StatR2).
	Stat Stat
	// Compress DEFLATE-compresses each tile payload.
	Compress bool
	// LD carries kernel blocking, threading, and context options for the
	// blocked pass that produces the tiles.
	LD core.Options
}

// BuildStats reports what a build wrote and the memory bound it ran
// under.
type BuildStats struct {
	// Tiles is the number of tiles written; TileBytes their total payload
	// size on disk; FileBytes the whole container including header and
	// index.
	Tiles     int
	TileBytes int64
	FileBytes int64
	// PeakResultBytes is the build's result-storage high-water mark: one
	// NT-row float64 stripe buffer plus core.Stream's fused float64
	// stripe — O(StripeRows × SNPs), never the n² result. (The fused
	// epilogue writes statistics straight into the stream's stripe; the
	// old uint32 count stripe and per-row vector no longer exist.)
	PeakResultBytes int64
	// StartStripe is the tile row the build began at: 0 for a fresh
	// build, the checkpoint's stripe count for a resumed one.
	StartStripe int
}

func (o BuildOptions) normalize() (BuildOptions, error) {
	if o.TileSize == 0 {
		o.TileSize = 256
	}
	if o.Stat == 0 {
		o.Stat = StatR2
	}
	if o.TileSize < 1 {
		return o, fmt.Errorf("ldstore: invalid tile size %d", o.TileSize)
	}
	if raw := int64(o.TileSize) * int64(o.TileSize) * 8; raw > MaxTileBytes {
		return o, fmt.Errorf("ldstore: tile size %d needs %d-byte tiles, above MaxTileBytes (%d)",
			o.TileSize, raw, MaxTileBytes)
	}
	if !o.Stat.valid() {
		return o, fmt.Errorf("ldstore: invalid statistic kind %d", o.Stat)
	}
	return o, nil
}

// BuildFile builds a tile store for the matrix at path, removing the
// partial file on failure.
func BuildFile(path string, g *bitmat.Matrix, opt BuildOptions) (BuildStats, error) {
	f, err := os.Create(path)
	if err != nil {
		return BuildStats{}, err
	}
	st, err := Build(f, g, opt)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return BuildStats{}, err
	}
	return st, nil
}

// Build computes the selected statistic for every SNP pair of g with the
// blocked driver and writes the tile container to w. It reuses
// core.Stream's triangular scan with StripeRows = TileSize, so each tile
// row of the output is produced from one stripe and result memory stays
// O(TileSize × SNPs) no matter how large the full n² matrix would be;
// the scan rides the fused tile epilogue, so the statistics land in the
// stripe straight from the driver's workers with no count intermediate.
// The Exact epilogue is forced so stored values are bit-identical to the
// dense core.Matrix path a serverless request would compute.
func Build(w io.WriteSeeker, g *bitmat.Matrix, opt BuildOptions) (BuildStats, error) {
	opt, err := opt.normalize()
	if err != nil {
		return BuildStats{}, err
	}
	n, nt := g.SNPs, opt.TileSize
	t := tilesFor(n, nt)
	hdr := header{
		stat:        opt.Stat,
		snps:        uint64(n),
		samples:     uint64(g.Samples),
		tileSize:    uint32(nt),
		fingerprint: Fingerprint(g),
		tileCount:   uint64(triangleTiles(t)),
	}
	if opt.Compress {
		hdr.flags |= flagCompressed
	}

	bw := bufio.NewWriterSize(writerOnly{w}, 1<<20)
	if _, err := bw.Write(hdr.encode()); err != nil {
		return BuildStats{}, err
	}

	b := &builder{
		n: n, nt: nt, tiles: t, compress: opt.Compress,
		bw:     bw,
		offset: headerSize,
		index:  make([]indexEntry, 0, triangleTiles(t)),
		buf:    make([]float64, min(nt, max(n, 1))*n),
		raw:    make([]byte, 0, nt*nt*8),
	}
	if opt.Compress {
		b.fw, _ = flate.NewWriter(&b.comp, flate.DefaultCompression)
	}

	// A visit callback cannot abort core.Stream, so I/O failures are
	// recorded and the scan is cancelled through the driver's own context
	// plumbing; the first recorded error wins over the resulting ctx.Err.
	parent := opt.LD.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	ld := opt.LD
	ld.Ctx = ctx
	ld.Measures = opt.Stat.Measure()
	streamErr := core.Stream(g, core.StreamOptions{
		Options:    ld,
		StripeRows: nt,
		Triangular: true,
		Exact:      true,
	}, func(i, j0 int, row []float64) {
		if b.err != nil {
			return
		}
		if err := b.addRow(i, row); err != nil {
			b.err = err
			cancel()
		}
	})
	if b.err != nil {
		return BuildStats{}, b.err
	}
	if streamErr != nil {
		return BuildStats{}, streamErr
	}

	// Index, then the back-patched header carrying its offset.
	tileBytes := b.offset - headerSize
	hdr.indexOffset = uint64(b.offset)
	entry := make([]byte, indexEntrySize)
	for _, e := range b.index {
		e.encode(entry)
		if _, err := bw.Write(entry); err != nil {
			return BuildStats{}, err
		}
	}
	if err := bw.Flush(); err != nil {
		return BuildStats{}, err
	}
	if _, err := w.Seek(0, io.SeekStart); err != nil {
		return BuildStats{}, err
	}
	if _, err := w.Write(hdr.encode()); err != nil {
		return BuildStats{}, err
	}
	return BuildStats{
		Tiles:     len(b.index),
		TileBytes: tileBytes,
		FileBytes: b.offset + int64(len(b.index)*indexEntrySize),
		PeakResultBytes: int64(len(b.buf))*8 + // tile-row stripe buffer
			int64(min(nt, max(n, 1)))*int64(n)*8, // core.Stream fused value stripe
	}, nil
}

// builder accumulates one stripe of statistic rows and flushes it as one
// row of tiles.
type builder struct {
	n        int // SNP count (matrix side)
	nt       int
	tiles    int
	compress bool

	bw     *bufio.Writer
	offset int64
	index  []indexEntry
	err    error

	// onStripe, when set, runs after each stripe's tiles are fully
	// appended — the checkpointing hook of the out-of-core builder.
	onStripe func(i0 int) error

	// buf holds the current stripe: row r (global SNP i0+r) occupies
	// buf[r*width : (r+1)*width] for columns [i0, SNPs), width = SNPs−i0.
	buf  []float64
	raw  []byte
	comp bytes.Buffer
	fw   *flate.Writer

	next int // expected next global row
}

// addRow copies one streamed row into the stripe buffer and flushes the
// stripe once its last row has arrived. core.Stream delivers rows in
// order; the builder asserts that rather than trusting it silently.
func (b *builder) addRow(i int, row []float64) error {
	if i != b.next {
		return fmt.Errorf("ldstore: stream delivered row %d, want %d", i, b.next)
	}
	b.next++
	n := b.n
	i0 := i - i%b.nt
	width := n - i0
	r := i - i0
	copy(b.buf[r*width+(i-i0):(r+1)*width], row)
	if i == min(i0+b.nt, n)-1 {
		return b.flushStripe(i0)
	}
	return nil
}

// flushStripe mirrors the diagonal tile's lower triangle (both halves live
// in the same stripe) and writes every tile of tile row i0/nt.
func (b *builder) flushStripe(i0 int) error {
	n := b.n
	rows := min(b.nt, n-i0)
	width := n - i0
	for r := 1; r < rows; r++ {
		for c := 0; c < r; c++ {
			b.buf[r*width+c] = b.buf[c*width+r]
		}
	}
	ti := i0 / b.nt
	for tj := ti; tj < b.tiles; tj++ {
		if err := b.writeTile(i0, rows, width, ti, tj); err != nil {
			return err
		}
	}
	if b.onStripe != nil {
		return b.onStripe(i0)
	}
	return nil
}

// writeTile serializes tile (ti, tj) from the stripe buffer, optionally
// compresses it, and appends payload + index entry.
func (b *builder) writeTile(i0, rows, width, ti, tj int) error {
	n := b.n
	colLo := tj*b.nt - i0
	cols := min(b.nt, n-tj*b.nt)
	b.raw = b.raw[:rows*cols*8]
	maxOff := math.Inf(-1)
	for r := 0; r < rows; r++ {
		src := b.buf[r*width+colLo : r*width+colLo+cols]
		for c, v := range src {
			binary.LittleEndian.PutUint64(b.raw[(r*cols+c)*8:], math.Float64bits(v))
			if v > maxOff && !(ti == tj && r == c) {
				maxOff = v
			}
		}
	}
	payload := b.raw
	if b.compress {
		b.comp.Reset()
		b.fw.Reset(&b.comp)
		if _, err := b.fw.Write(b.raw); err != nil {
			return err
		}
		if err := b.fw.Close(); err != nil {
			return err
		}
		payload = b.comp.Bytes()
	}
	if _, err := b.bw.Write(payload); err != nil {
		return err
	}
	b.index = append(b.index, indexEntry{
		offset: uint64(b.offset),
		length: uint32(len(payload)),
		crc:    crc32.ChecksumIEEE(payload),
		maxOff: maxOff,
	})
	b.offset += int64(len(payload))
	return nil
}

// writerOnly hides the Seek method from bufio so buffered writes cannot
// interleave with the final header patch unflushed.
type writerOnly struct{ w io.Writer }

func (wo writerOnly) Write(p []byte) (int, error) { return wo.w.Write(p) }
