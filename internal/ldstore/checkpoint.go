package ldstore

import (
	"encoding/json"
	"fmt"
	"os"
)

// Checkpointing for out-of-core builds. A genome-scale build can run for
// hours; a kill (OOM, preemption, operator) must not forfeit the stripes
// already computed. Two small files ride alongside the store being built:
//
//   - the manifest (<store>.ckpt): a JSON record of how many stripes are
//     durably on disk, the data-file byte offset they end at, and the full
//     build identity (dataset fingerprint + options). Written with the
//     atomic temp+rename idiom after every stripe, strictly after the
//     stripe's tile bytes and index sidecar have been fsync'd — so the
//     manifest never points past data that could be lost.
//   - the index sidecar (<store>.idx): the raw 24-byte indexEntry records
//     of every flushed tile, appended per stripe. The store's real index
//     only lands at end-of-file once the build completes, so a resumed
//     build reloads the entries it can no longer recompute from here.
//
// Resume truncates the data file to the manifest's offset, reloads the
// sidecar, and restarts the scan at the next stripe via the stream's row
// window. Tile payloads are deterministic (fixed DEFLATE level, per-tile
// writer reset) and column-panel independent, so the resumed build's
// output is byte-identical to an uninterrupted one's; both sidecar files
// are removed on success.

// manifestVersion guards the checkpoint manifest schema.
const manifestVersion = 1

// manifest is the checkpoint record of a partially built store.
type manifest struct {
	Version int    `json:"version"`
	Magic   string `json:"magic"` // "ldstore-checkpoint"

	// Build identity: a manifest may only resume a build of the same
	// dataset with the same options, otherwise the mixed output would be
	// silently wrong.
	Fingerprint uint64 `json:"fingerprint"`
	SNPs        int    `json:"snps"`
	Samples     int    `json:"samples"`
	TileSize    int    `json:"tile_size"`
	Stat        uint32 `json:"stat"`
	Compress    bool   `json:"compress"`

	// Progress: StripesDone stripes are durably flushed, their tile
	// payloads ending at DataOffset in the data file, with TilesWritten
	// index entries in the sidecar.
	StripesDone  int   `json:"stripes_done"`
	DataOffset   int64 `json:"data_offset"`
	TilesWritten int   `json:"tiles_written"`
}

const manifestMagic = "ldstore-checkpoint"

// tilesThrough returns the number of tiles in the first `stripes` tile
// rows of a t-band upper triangle: row s holds t−s tiles.
func tilesThrough(t, stripes int) int64 {
	s := int64(stripes)
	return s*int64(t) - s*(s-1)/2
}

// parseManifest decodes and validates a checkpoint manifest. Every field
// is cross-checked for internal consistency so a corrupt or truncated
// manifest is rejected rather than resumed into a wrong store.
func parseManifest(b []byte) (manifest, error) {
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("ldstore: checkpoint manifest: %w", err)
	}
	if m.Magic != manifestMagic {
		return m, fmt.Errorf("ldstore: checkpoint manifest: bad magic %q", m.Magic)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("ldstore: checkpoint manifest: unsupported version %d", m.Version)
	}
	if m.SNPs < 0 || m.SNPs > maxSNPs || m.Samples < 0 || int64(m.Samples) > maxSamples {
		return m, fmt.Errorf("ldstore: checkpoint manifest: implausible dimensions %d×%d", m.SNPs, m.Samples)
	}
	if m.TileSize < 1 || int64(m.TileSize)*int64(m.TileSize)*8 > MaxTileBytes {
		return m, fmt.Errorf("ldstore: checkpoint manifest: invalid tile size %d", m.TileSize)
	}
	if !Stat(m.Stat).valid() {
		return m, fmt.Errorf("ldstore: checkpoint manifest: invalid statistic %d", m.Stat)
	}
	t := tilesFor(m.SNPs, m.TileSize)
	if m.StripesDone < 0 || m.StripesDone > t {
		return m, fmt.Errorf("ldstore: checkpoint manifest: %d stripes done of %d", m.StripesDone, t)
	}
	if want := tilesThrough(t, m.StripesDone); int64(m.TilesWritten) != want {
		return m, fmt.Errorf("ldstore: checkpoint manifest: %d tiles written, want %d for %d stripes",
			m.TilesWritten, want, m.StripesDone)
	}
	if m.DataOffset < headerSize {
		return m, fmt.Errorf("ldstore: checkpoint manifest: data offset %d inside header", m.DataOffset)
	}
	return m, nil
}

// writeManifest atomically replaces path with the encoded manifest:
// temp file in the same directory, fsync, rename.
func writeManifest(path string, m manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// readManifest loads and validates the manifest at path.
func readManifest(path string) (manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return manifest{}, err
	}
	return parseManifest(b)
}

// loadSidecar reads the first `tiles` index entries from the sidecar file
// and truncates it to exactly that length, discarding any trailing entries
// whose manifest rename never landed.
func loadSidecar(f *os.File, tiles int) ([]indexEntry, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	want := int64(tiles) * indexEntrySize
	if fi.Size() < want {
		return nil, fmt.Errorf("ldstore: index sidecar holds %d bytes, need %d for %d tiles", fi.Size(), want, tiles)
	}
	b := make([]byte, want)
	if _, err := f.ReadAt(b, 0); err != nil {
		return nil, err
	}
	entries := make([]indexEntry, tiles)
	for i := range entries {
		entries[i] = decodeIndexEntry(b[i*indexEntrySize:])
	}
	if err := f.Truncate(want); err != nil {
		return nil, err
	}
	if _, err := f.Seek(want, 0); err != nil {
		return nil, err
	}
	return entries, nil
}

// appendSidecar appends entries to the sidecar and syncs it.
func appendSidecar(f *os.File, entries []indexEntry) error {
	buf := make([]byte, len(entries)*indexEntrySize)
	for i, e := range entries {
		e.encode(buf[i*indexEntrySize:])
	}
	if _, err := f.Write(buf); err != nil {
		return err
	}
	return f.Sync()
}

// PartialError reports a build that failed after durably flushing some
// stripes. Callers that checkpoint can retry with Resume; the error
// carries how far the build got so operators see partial progress rather
// than a bare failure.
type PartialError struct {
	// FlushedStripes tile rows are durably on disk, of TotalStripes.
	FlushedStripes int
	TotalStripes   int
	Err            error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("ldstore: build failed after %d/%d stripes durably flushed: %v",
		e.FlushedStripes, e.TotalStripes, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }
