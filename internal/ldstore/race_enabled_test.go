//go:build race

package ldstore

// raceEnabled reports that this test binary runs under the race
// detector, whose instrumentation and sync.Pool behavior inflate
// TotalAlloc far beyond what the code under test allocates.
const raceEnabled = true
