package ldstore

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStoreRect checks row-restricted rectangles against the dense
// reference for windows that cross tile boundaries, sit entirely below
// the diagonal (against-the-grain tile reads), and degenerate to single
// rows/columns.
func TestStoreRect(t *testing.T) {
	g := testMatrix(t, 70, 40, 77)
	want := dense(t, g, StatR2)
	s := buildStore(t, g, BuildOptions{TileSize: 16}, Options{})
	n := g.SNPs
	rects := [][4]int{
		{0, 70, 0, 70},   // everything
		{10, 30, 25, 60}, // straddles the diagonal
		{40, 65, 0, 20},  // strictly below the diagonal
		{0, 16, 16, 32},  // exact tile alignment
		{33, 34, 0, 70},  // single row
		{0, 70, 47, 48},  // single column
	}
	for _, rc := range rects {
		r0, r1, c0, c1 := rc[0], rc[1], rc[2], rc[3]
		got, err := s.Rect(r0, r1, c0, c1)
		if err != nil {
			t.Fatalf("Rect%v: %v", rc, err)
		}
		w := c1 - c0
		if len(got) != (r1-r0)*w {
			t.Fatalf("Rect%v returned %d values", rc, len(got))
		}
		for i := r0; i < r1; i++ {
			for j := c0; j < c1; j++ {
				if got[(i-r0)*w+(j-c0)] != want[i*n+j] {
					t.Fatalf("Rect%v (%d,%d) = %v, want %v", rc, i, j, got[(i-r0)*w+(j-c0)], want[i*n+j])
				}
			}
		}
	}
	for _, rc := range [][4]int{{-1, 5, 0, 5}, {5, 5, 0, 5}, {0, 5, 5, 5}, {0, 71, 0, 5}, {0, 5, 0, 71}} {
		if _, err := s.Rect(rc[0], rc[1], rc[2], rc[3]); err == nil {
			t.Fatalf("Rect%v accepted", rc)
		}
	}
}

// TestStoreTopRange checks that per-strip tops union to the global top:
// ownership by the smaller index makes the strips disjoint and complete.
func TestStoreTopRange(t *testing.T) {
	g := testMatrix(t, 64, 48, 21)
	s := buildStore(t, g, BuildOptions{TileSize: 16}, Options{})
	k := 500                 // larger than the number of off-diagonal pairs in any strip? no: exhaustive
	full, err := s.Top(2016) // all 64·63/2 pairs
	if err != nil {
		t.Fatal(err)
	}
	var merged []TopPair
	for _, w := range [][2]int{{0, 10}, {10, 40}, {40, 64}} {
		part, err := s.TopRange(2016, w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range part {
			if p.I < w[0] || p.I >= w[1] || p.J <= p.I {
				t.Fatalf("strip %v returned pair %+v", w, p)
			}
		}
		merged = append(merged, part...)
	}
	if len(merged) != len(full) {
		t.Fatalf("strips union to %d pairs, full scan %d", len(merged), len(full))
	}
	seen := make(map[[2]int]float64, len(merged))
	for _, p := range merged {
		seen[[2]int{p.I, p.J}] = p.Value
	}
	for _, p := range full {
		v, ok := seen[[2]int{p.I, p.J}]
		if !ok || math.Float64bits(v) != math.Float64bits(p.Value) {
			t.Fatalf("pair %+v missing or differs in strip union", p)
		}
	}
	// A small-k strip query must agree with filtering the global ranking.
	part, err := s.TopRange(5, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	var filtered []TopPair
	for _, p := range full {
		if p.I >= 10 && p.I < 40 {
			filtered = append(filtered, p)
			if len(filtered) == 5 {
				break
			}
		}
	}
	if len(part) != len(filtered) {
		t.Fatalf("TopRange(5) returned %d pairs", len(part))
	}
	for i := range part {
		if part[i] != filtered[i] {
			t.Fatalf("TopRange rank %d: %+v, want %+v", i, part[i], filtered[i])
		}
	}
	if _, err := s.TopRange(k, 40, 10); err == nil {
		t.Fatal("inverted row range accepted")
	}
}

// TestCacheConcurrentConsistency hammers a 2-tile LRU from 8 goroutines
// mixing At and Region lookups and then checks the hit/miss counters add
// up exactly: every tile() call records exactly one hit or one miss, so
// under any interleaving hits+misses must equal the number of lookups
// issued. Run under -race this also exercises the mutex discipline of
// tileCache against concurrent eviction.
func TestCacheConcurrentConsistency(t *testing.T) {
	g := testMatrix(t, 80, 40, 99)
	want := dense(t, g, StatR2)
	s := buildStore(t, g, BuildOptions{TileSize: 16}, Options{CacheTiles: 2})
	n := g.SNPs
	nt := s.TileSize()
	before := ReadStats()
	var lookups atomic.Int64 // tile() calls issued across all workers
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 60; q++ {
				i, j := (w*17+q*5)%n, (w*7+q*11)%n
				v, err := s.At(i, j)
				if err != nil {
					errs <- err
					return
				}
				lookups.Add(1) // At reads exactly one tile
				if math.Float64bits(v) != math.Float64bits(want[i*n+j]) {
					errs <- fmt.Errorf("At(%d,%d) = %v, want %v", i, j, v, want[i*n+j])
					return
				}
				if q%6 == 0 {
					lo := min(i, n-20)
					if _, err := s.Region(lo, lo+20); err != nil {
						errs <- err
						return
					}
					// Count the region's tile visits the way Region does.
					c := int64(0)
					for ti := lo / nt; ti*nt < lo+20; ti++ {
						for tj := ti; tj*nt < lo+20; tj++ {
							c++
						}
					}
					lookups.Add(c)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Serial epilogue: an immediate re-read of the same tile is a
	// guaranteed hit, so the hit assertion below cannot be scheduling-
	// dependent.
	for r := 0; r < 2; r++ {
		if _, err := s.At(0, 0); err != nil {
			t.Fatal(err)
		}
		lookups.Add(1)
	}
	after := ReadStats()
	gotLookups := int64(after.CacheHits-before.CacheHits) + int64(after.CacheMisses-before.CacheMisses)
	if gotLookups != lookups.Load() {
		t.Fatalf("hits+misses moved by %d, issued %d lookups", gotLookups, lookups.Load())
	}
	// Every miss decodes and reads a tile; concurrent same-tile misses may
	// each read, so TilesRead must equal the miss count exactly.
	if int64(after.TilesRead-before.TilesRead) != int64(after.CacheMisses-before.CacheMisses) {
		t.Fatalf("tiles_read moved by %d, misses by %d",
			after.TilesRead-before.TilesRead, after.CacheMisses-before.CacheMisses)
	}
	if after.CacheHits == before.CacheHits {
		t.Fatal("no cache hits at all under a hot working set")
	}
	if after.Evictions == before.Evictions {
		t.Fatal("a 2-tile cache never evicted across a 15-tile store")
	}
}
