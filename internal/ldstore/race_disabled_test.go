//go:build !race

package ldstore

const raceEnabled = false
