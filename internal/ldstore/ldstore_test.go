package ldstore

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/popsim"
)

func testMatrix(t *testing.T, snps, samples int, seed int64) *bitmat.Matrix {
	t.Helper()
	g, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: seed})
	if err != nil {
		t.Fatalf("popsim.Mosaic: %v", err)
	}
	return g
}

func buildStore(t *testing.T, g *bitmat.Matrix, opt BuildOptions, so Options) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.ldts")
	if _, err := BuildFile(path, g, opt); err != nil {
		t.Fatalf("BuildFile: %v", err)
	}
	s, err := Open(path, so)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// dense computes the reference matrix for a statistic via the dense path.
func dense(t *testing.T, g *bitmat.Matrix, stat Stat) []float64 {
	t.Helper()
	res, err := core.Matrix(g, core.Options{Measures: stat.Measure()})
	if err != nil {
		t.Fatalf("core.Matrix: %v", err)
	}
	switch stat {
	case StatR2:
		return res.R2
	case StatD:
		return res.D
	default:
		return res.DPrime
	}
}

// TestStoreBitIdentical verifies the acceptance criterion driving the
// whole design: every value a store serves — via At and via Region —
// must be bit-for-bit the value the dense core.Matrix path computes, for
// every statistic, with and without compression, across tile sizes that
// do and do not divide the SNP count.
func TestStoreBitIdentical(t *testing.T) {
	g := testMatrix(t, 75, 96, 3)
	n := g.SNPs
	for _, stat := range []Stat{StatR2, StatD, StatDPrime} {
		want := dense(t, g, stat)
		for _, compress := range []bool{false, true} {
			for _, nt := range []int{16, 25, 128} {
				s := buildStore(t, g, BuildOptions{TileSize: nt, Stat: stat, Compress: compress}, Options{})
				if s.SNPs() != n || s.Samples() != g.Samples || s.Stat() != stat {
					t.Fatalf("stat=%v nt=%d: header mismatch: %+v", stat, nt, s.Info())
				}
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						got, err := s.At(i, j)
						if err != nil {
							t.Fatalf("At(%d,%d): %v", i, j, err)
						}
						if math.Float64bits(got) != math.Float64bits(want[i*n+j]) {
							t.Fatalf("stat=%v compress=%v nt=%d At(%d,%d) = %v, dense %v",
								stat, compress, nt, i, j, got, want[i*n+j])
						}
					}
				}
				start, end := 7, 64
				reg, err := s.Region(start, end)
				if err != nil {
					t.Fatalf("Region: %v", err)
				}
				w := end - start
				for i := 0; i < w; i++ {
					for j := 0; j < w; j++ {
						got, ref := reg[i*w+j], want[(i+start)*n+(j+start)]
						if math.Float64bits(got) != math.Float64bits(ref) {
							t.Fatalf("stat=%v compress=%v nt=%d Region[%d,%d] = %v, dense %v",
								stat, compress, nt, i, j, got, ref)
						}
					}
				}
			}
		}
	}
}

func TestStoreFingerprint(t *testing.T) {
	g := testMatrix(t, 30, 40, 1)
	s := buildStore(t, g, BuildOptions{TileSize: 8}, Options{})
	if s.Fingerprint() != Fingerprint(g) {
		t.Fatalf("fingerprint %x, want %x", s.Fingerprint(), Fingerprint(g))
	}
	other := testMatrix(t, 30, 40, 2)
	if s.Fingerprint() == Fingerprint(other) {
		t.Fatal("distinct datasets share a fingerprint")
	}
}

func TestStoreTop(t *testing.T) {
	g := testMatrix(t, 90, 64, 7)
	n := g.SNPs
	want := dense(t, g, StatR2)
	type pair struct {
		i, j int
		v    float64
	}
	var all []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, pair{i, j, want[i*n+j]})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].v != all[b].v {
			return all[a].v > all[b].v
		}
		if all[a].i != all[b].i {
			return all[a].i < all[b].i
		}
		return all[a].j < all[b].j
	})
	s := buildStore(t, g, BuildOptions{TileSize: 16}, Options{})
	for _, k := range []int{1, 10, 200, n * n} {
		got, err := s.Top(k)
		if err != nil {
			t.Fatalf("Top(%d): %v", k, err)
		}
		wantLen := min(k, len(all))
		if len(got) != wantLen {
			t.Fatalf("Top(%d) returned %d pairs, want %d", k, len(got), wantLen)
		}
		for r, p := range got {
			ref := all[r]
			if p.I != ref.i || p.J != ref.j || math.Float64bits(p.Value) != math.Float64bits(ref.v) {
				t.Fatalf("Top(%d)[%d] = (%d,%d,%v), want (%d,%d,%v)",
					k, r, p.I, p.J, p.Value, ref.i, ref.j, ref.v)
			}
		}
	}
	if _, err := s.Top(0); err == nil {
		t.Fatal("Top(0) succeeded")
	}
}

// TestStoreTopPrunes asserts the per-tile maxima actually skip tiles: on
// a dataset with many tiles, a small Top must read fewer tiles than
// exist.
func TestStoreTopPrunes(t *testing.T) {
	g := testMatrix(t, 200, 64, 11)
	s := buildStore(t, g, BuildOptions{TileSize: 16}, Options{CacheTiles: 1024})
	before := ReadStats()
	if _, err := s.Top(3); err != nil {
		t.Fatalf("Top: %v", err)
	}
	read := ReadStats().TilesRead - before.TilesRead
	if total := uint64(len(s.index)); read >= total {
		t.Fatalf("Top(3) read all %d tiles; maxOff pruning is not working", total)
	}
}

func TestStoreBand(t *testing.T) {
	g := testMatrix(t, 60, 48, 5)
	n := g.SNPs
	want := dense(t, g, StatR2)
	s := buildStore(t, g, BuildOptions{TileSize: 16}, Options{})
	band := 9
	type cell struct {
		i, j int
		v    float64
	}
	var got []cell
	err := s.Band(0, n, band, func(i, j int, v float64) bool {
		got = append(got, cell{i, j, v})
		return true
	})
	if err != nil {
		t.Fatalf("Band: %v", err)
	}
	idx := 0
	for i := 0; i < n; i++ {
		for j := i; j <= min(i+band, n-1); j++ {
			if idx >= len(got) {
				t.Fatalf("band visit stopped early at %d cells", len(got))
			}
			c := got[idx]
			if c.i != i || c.j != j || math.Float64bits(c.v) != math.Float64bits(want[i*n+j]) {
				t.Fatalf("band cell %d = (%d,%d,%v), want (%d,%d,%v)", idx, c.i, c.j, c.v, i, j, want[i*n+j])
			}
			idx++
		}
	}
	if idx != len(got) {
		t.Fatalf("band visited %d cells, want %d", len(got), idx)
	}

	// Early stop.
	calls := 0
	if err := s.Band(0, n, band, func(int, int, float64) bool { calls++; return calls < 5 }); err != nil {
		t.Fatalf("Band early stop: %v", err)
	}
	if calls != 5 {
		t.Fatalf("early-stopped band made %d visits, want 5", calls)
	}
}

func TestStoreCacheCounters(t *testing.T) {
	g := testMatrix(t, 64, 32, 13)
	s := buildStore(t, g, BuildOptions{TileSize: 16}, Options{CacheTiles: 2})
	before := ReadStats()
	// 4 tile bands → 10 tiles; a full region sweep through a 2-tile cache
	// must evict, and repeating a single hot query must hit.
	if _, err := s.Region(0, 64); err != nil {
		t.Fatalf("Region: %v", err)
	}
	mid := ReadStats()
	if mid.TilesRead-before.TilesRead == 0 || mid.Evictions-before.Evictions == 0 {
		t.Fatalf("cold sweep through tiny cache: %+v", mid)
	}
	if _, err := s.At(63, 63); err != nil { // resident: last tile touched
		t.Fatalf("At: %v", err)
	}
	after := ReadStats()
	if after.CacheHits-mid.CacheHits != 1 {
		t.Fatalf("hot re-read missed the cache: %+v vs %+v", after, mid)
	}
	if after.BytesServed <= before.BytesServed {
		t.Fatal("BytesServed did not advance")
	}
}

// TestBuildMemoryBound is the acceptance criterion that the builder's
// result storage is O(StripeRows × SNPs): at n=1536 the full float64
// matrix alone is n²×8 ≈ 18.9 MB, and the build must allocate less than
// n²×4 total — impossible if anything materializes the full matrix.
func TestBuildMemoryBound(t *testing.T) {
	n := 1536
	g := testMatrix(t, n, 64, 17)
	path := filepath.Join(t.TempDir(), "big.ldts")
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	st, err := BuildFile(path, g, BuildOptions{
		TileSize: 128,
		LD:       core.Options{Blis: blis.Config{Threads: 1}},
	})
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatalf("BuildFile: %v", err)
	}
	budget := int64(n) * int64(n) * 4
	if alloc := int64(after.TotalAlloc - before.TotalAlloc); alloc >= budget {
		t.Fatalf("build allocated %d bytes, budget %d (full matrix would be %d)",
			alloc, budget, int64(n)*int64(n)*8)
	}
	if st.PeakResultBytes >= budget {
		t.Fatalf("PeakResultBytes %d exceeds budget %d", st.PeakResultBytes, budget)
	}
	// And the file is still complete and readable.
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if s.SNPs() != n || s.Info().Tiles != st.Tiles {
		t.Fatalf("store mismatch: %+v vs %+v", s.Info(), st)
	}
}

func TestBuildErrors(t *testing.T) {
	g := testMatrix(t, 10, 16, 19)
	if _, err := BuildFile(filepath.Join(t.TempDir(), "x"), g, BuildOptions{TileSize: -1}); err == nil {
		t.Fatal("negative tile size accepted")
	}
	if _, err := BuildFile(filepath.Join(t.TempDir(), "x"), g, BuildOptions{Stat: Stat(9)}); err == nil {
		t.Fatal("bad stat accepted")
	}
	if _, err := BuildFile(filepath.Join(t.TempDir(), "x"), g, BuildOptions{TileSize: 1 << 20}); err == nil {
		t.Fatal("tile above MaxTileBytes accepted")
	}
}

// TestBuildWriteFailure exercises the error path through the visit
// callback: a writer that fails mid-build must surface the write error
// (not a panic, not a zero-stat success), and BuildFile must remove the
// partial output.
func TestBuildWriteFailure(t *testing.T) {
	g := testMatrix(t, 64, 32, 23)
	w := &failingWriter{failAfter: headerSize + 100}
	if _, err := Build(w, g, BuildOptions{TileSize: 16}); err == nil {
		t.Fatal("Build on a failing writer succeeded")
	}
	path := filepath.Join(t.TempDir(), "partial.ldts")
	if _, err := BuildFile(path, g, BuildOptions{TileSize: 1 << 20}); err == nil {
		t.Fatal("BuildFile succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial file left behind: stat err=%v", err)
	}
}

type failingWriter struct {
	buf       bytes.Buffer
	failAfter int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.buf.Len()+len(p) > f.failAfter {
		return 0, os.ErrClosed
	}
	return f.buf.Write(p)
}

func (f *failingWriter) Seek(offset int64, whence int) (int64, error) { return 0, nil }

func TestStoreQueryErrors(t *testing.T) {
	g := testMatrix(t, 20, 16, 29)
	s := buildStore(t, g, BuildOptions{TileSize: 8}, Options{})
	if _, err := s.At(-1, 0); err == nil {
		t.Fatal("At(-1,0) succeeded")
	}
	if _, err := s.At(0, 20); err == nil {
		t.Fatal("At(0,n) succeeded")
	}
	if _, err := s.Region(5, 5); err == nil {
		t.Fatal("empty region succeeded")
	}
	if _, err := s.Region(0, 21); err == nil {
		t.Fatal("overlong region succeeded")
	}
	if err := s.Band(0, 20, 0, func(int, int, float64) bool { return true }); err == nil {
		t.Fatal("zero band succeeded")
	}
	if err := s.Band(-1, 20, 3, func(int, int, float64) bool { return true }); err == nil {
		t.Fatal("negative band start succeeded")
	}
}

// TestStoreCorruption flips payload bytes and checks the CRC catches it.
func TestStoreCorruption(t *testing.T) {
	g := testMatrix(t, 32, 24, 31)
	path := filepath.Join(t.TempDir(), "c.ldts")
	if _, err := BuildFile(path, g, BuildOptions{TileSize: 8}); err != nil {
		t.Fatalf("BuildFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+5] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open after payload corruption should defer to read time: %v", err)
	}
	defer s.Close()
	if _, err := s.At(0, 0); err == nil {
		t.Fatal("corrupted tile served without a checksum error")
	}
}

func TestStoreEmptyAndTiny(t *testing.T) {
	empty := bitmat.New(0, 8)
	s := buildStore(t, empty, BuildOptions{TileSize: 4}, Options{})
	if s.SNPs() != 0 || s.Info().Tiles != 0 {
		t.Fatalf("empty store: %+v", s.Info())
	}
	if _, err := s.At(0, 0); err == nil {
		t.Fatal("At on empty store succeeded")
	}

	one := testMatrix(t, 1, 8, 37)
	s1 := buildStore(t, one, BuildOptions{TileSize: 64}, Options{})
	v, err := s1.At(0, 0)
	if err != nil {
		t.Fatalf("At(0,0): %v", err)
	}
	want := dense(t, one, StatR2)
	if math.Float64bits(v) != math.Float64bits(want[0]) {
		t.Fatalf("1-SNP store At(0,0)=%v, want %v", v, want[0])
	}
}

// TestStoreConcurrentReads hammers one Store from many goroutines — the
// cache is the only shared mutable state, and the race tier runs this
// under -race.
func TestStoreConcurrentReads(t *testing.T) {
	g := testMatrix(t, 96, 48, 43)
	want := dense(t, g, StatR2)
	s := buildStore(t, g, BuildOptions{TileSize: 16}, Options{CacheTiles: 3})
	n := g.SNPs
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 40; q++ {
				i, j := (w*13+q*7)%n, (w*29+q*3)%n
				v, err := s.At(i, j)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(v) != math.Float64bits(want[i*n+j]) {
					errs <- fmt.Errorf("concurrent At(%d,%d) = %v, want %v", i, j, v, want[i*n+j])
					return
				}
				if q%10 == 0 {
					if _, err := s.Region(min(i, j), min(i, j)+16); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
