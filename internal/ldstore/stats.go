package ldstore

import "sync/atomic"

// Package-wide serving instrumentation, mirroring the blis driver
// counters: the HTTP surface needs to answer "is the tile cache doing its
// job" and "how much store traffic are we serving" without per-call
// plumbing, so every Store feeds cumulative atomic counters that any
// observer (/debug/vars, a benchmark harness) snapshots with ReadStats
// and differences over time.
var stats struct {
	tilesRead   atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	evictions   atomic.Uint64
	bytesRead   atomic.Uint64
	bytesServed atomic.Uint64
}

// Stats is a snapshot of the cumulative tile-store counters.
type Stats struct {
	// TilesRead counts tiles decoded from disk (cache misses that
	// completed a load); BytesRead is their on-disk payload bytes.
	TilesRead uint64
	BytesRead uint64
	// CacheHits/CacheMisses count tile-cache lookups; Evictions counts
	// tiles dropped by the LRU to admit new ones.
	CacheHits   uint64
	CacheMisses uint64
	Evictions   uint64
	// BytesServed is the cumulative size of statistic values delivered
	// to queries (8 bytes per value), the store's service throughput.
	BytesServed uint64
}

// HitRate returns the fraction of tile lookups served from the cache, or
// 0 before the first lookup.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// ReadStats snapshots the cumulative store counters. Counters only grow;
// observers difference successive snapshots for rates.
func ReadStats() Stats {
	return Stats{
		TilesRead:   stats.tilesRead.Load(),
		BytesRead:   stats.bytesRead.Load(),
		CacheHits:   stats.cacheHits.Load(),
		CacheMisses: stats.cacheMisses.Load(),
		Evictions:   stats.evictions.Load(),
		BytesServed: stats.bytesServed.Load(),
	}
}
