package popcount

import "math/bits"

// The CSA-batched AND-count kernels: Harley–Seal carry-save-adder trees
// over the AND of two (or three, or four) word streams. Where AndCount
// issues one POPCNT per word-pair, these fold 16 AND-results through a
// ones/twos/fours/eights accumulator tree and popcount only the sixteens
// output — 16× fewer popcounts at the cost of ~5 cheap logic ops per
// word, the trade Clausecker & Lemire's positional-popcount work builds
// on. The fold is tail-correct: any length that is not a multiple of 16
// finishes with the exact scalar loop after the accumulators are flushed
// (integer counts, so the split point never changes the result).
//
// On hosts where the hardware popcount dual-issues (modern x86), the
// scalar AndCount still wins in pure Go — the batched strategies only
// pay off vectorized (see vector_amd64.go) — but these kernels are the
// portable batch tier and the reference the SIMD paths are tested
// against.

// AndCountCSA is AndCount (Σ popcount(a[i] & b[i])) computed through a
// fold-16 Harley–Seal CSA tree. Bit-identical to AndCount for every
// input; the slices must have equal length.
func AndCountCSA(a, b []uint64) int {
	n := len(a)
	_ = b[:n]
	total := 0
	var ones, twos, fours, eights uint64
	i := 0
	for ; i+16 <= n; i += 16 {
		var twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens uint64
		twosA, ones = csa(ones, a[i]&b[i], a[i+1]&b[i+1])
		twosB, ones = csa(ones, a[i+2]&b[i+2], a[i+3]&b[i+3])
		foursA, twos = csa(twos, twosA, twosB)
		twosA, ones = csa(ones, a[i+4]&b[i+4], a[i+5]&b[i+5])
		twosB, ones = csa(ones, a[i+6]&b[i+6], a[i+7]&b[i+7])
		foursB, twos = csa(twos, twosA, twosB)
		eightsA, fours = csa(fours, foursA, foursB)
		twosA, ones = csa(ones, a[i+8]&b[i+8], a[i+9]&b[i+9])
		twosB, ones = csa(ones, a[i+10]&b[i+10], a[i+11]&b[i+11])
		foursA, twos = csa(twos, twosA, twosB)
		twosA, ones = csa(ones, a[i+12]&b[i+12], a[i+13]&b[i+13])
		twosB, ones = csa(ones, a[i+14]&b[i+14], a[i+15]&b[i+15])
		foursB, twos = csa(twos, twosA, twosB)
		eightsB, fours = csa(fours, foursA, foursB)
		sixteens, eights = csa(eights, eightsA, eightsB)
		total += 16 * bits.OnesCount64(sixteens)
	}
	total += 8 * bits.OnesCount64(eights)
	total += 4 * bits.OnesCount64(fours)
	total += 2 * bits.OnesCount64(twos)
	total += bits.OnesCount64(ones)
	for ; i < n; i++ {
		total += bits.OnesCount64(a[i] & b[i])
	}
	return total
}

// AndCount3CSA is AndCount3 (Σ popcount(a[i] & b[i] & c[i])) through the
// same fold-16 CSA tree. Bit-identical to AndCount3.
func AndCount3CSA(a, b, c []uint64) int {
	n := len(a)
	_, _ = b[:n], c[:n]
	total := 0
	var ones, twos, fours, eights uint64
	i := 0
	for ; i+16 <= n; i += 16 {
		var twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens uint64
		twosA, ones = csa(ones, a[i]&b[i]&c[i], a[i+1]&b[i+1]&c[i+1])
		twosB, ones = csa(ones, a[i+2]&b[i+2]&c[i+2], a[i+3]&b[i+3]&c[i+3])
		foursA, twos = csa(twos, twosA, twosB)
		twosA, ones = csa(ones, a[i+4]&b[i+4]&c[i+4], a[i+5]&b[i+5]&c[i+5])
		twosB, ones = csa(ones, a[i+6]&b[i+6]&c[i+6], a[i+7]&b[i+7]&c[i+7])
		foursB, twos = csa(twos, twosA, twosB)
		eightsA, fours = csa(fours, foursA, foursB)
		twosA, ones = csa(ones, a[i+8]&b[i+8]&c[i+8], a[i+9]&b[i+9]&c[i+9])
		twosB, ones = csa(ones, a[i+10]&b[i+10]&c[i+10], a[i+11]&b[i+11]&c[i+11])
		foursA, twos = csa(twos, twosA, twosB)
		twosA, ones = csa(ones, a[i+12]&b[i+12]&c[i+12], a[i+13]&b[i+13]&c[i+13])
		twosB, ones = csa(ones, a[i+14]&b[i+14]&c[i+14], a[i+15]&b[i+15]&c[i+15])
		foursB, twos = csa(twos, twosA, twosB)
		eightsB, fours = csa(fours, foursA, foursB)
		sixteens, eights = csa(eights, eightsA, eightsB)
		total += 16 * bits.OnesCount64(sixteens)
	}
	total += 8 * bits.OnesCount64(eights)
	total += 4 * bits.OnesCount64(fours)
	total += 2 * bits.OnesCount64(twos)
	total += bits.OnesCount64(ones)
	for ; i < n; i++ {
		total += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return total
}

// andCount4CSA is Σ popcount(a[i] & b[i] & c[i] & d[i]) through the
// fold-16 tree — the joint-derived count of the masked kernel.
func andCount4CSA(a, b, c, d []uint64) int {
	n := len(a)
	_, _, _ = b[:n], c[:n], d[:n]
	total := 0
	var ones, twos, fours, eights uint64
	i := 0
	for ; i+16 <= n; i += 16 {
		var twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens uint64
		twosA, ones = csa(ones, a[i]&b[i]&c[i]&d[i], a[i+1]&b[i+1]&c[i+1]&d[i+1])
		twosB, ones = csa(ones, a[i+2]&b[i+2]&c[i+2]&d[i+2], a[i+3]&b[i+3]&c[i+3]&d[i+3])
		foursA, twos = csa(twos, twosA, twosB)
		twosA, ones = csa(ones, a[i+4]&b[i+4]&c[i+4]&d[i+4], a[i+5]&b[i+5]&c[i+5]&d[i+5])
		twosB, ones = csa(ones, a[i+6]&b[i+6]&c[i+6]&d[i+6], a[i+7]&b[i+7]&c[i+7]&d[i+7])
		foursB, twos = csa(twos, twosA, twosB)
		eightsA, fours = csa(fours, foursA, foursB)
		twosA, ones = csa(ones, a[i+8]&b[i+8]&c[i+8]&d[i+8], a[i+9]&b[i+9]&c[i+9]&d[i+9])
		twosB, ones = csa(ones, a[i+10]&b[i+10]&c[i+10]&d[i+10], a[i+11]&b[i+11]&c[i+11]&d[i+11])
		foursA, twos = csa(twos, twosA, twosB)
		twosA, ones = csa(ones, a[i+12]&b[i+12]&c[i+12]&d[i+12], a[i+13]&b[i+13]&c[i+13]&d[i+13])
		twosB, ones = csa(ones, a[i+14]&b[i+14]&c[i+14]&d[i+14], a[i+15]&b[i+15]&c[i+15]&d[i+15])
		foursB, twos = csa(twos, twosA, twosB)
		eightsB, fours = csa(fours, foursA, foursB)
		sixteens, eights = csa(eights, eightsA, eightsB)
		total += 16 * bits.OnesCount64(sixteens)
	}
	total += 8 * bits.OnesCount64(eights)
	total += 4 * bits.OnesCount64(fours)
	total += 2 * bits.OnesCount64(twos)
	total += bits.OnesCount64(ones)
	for ; i < n; i++ {
		total += bits.OnesCount64(a[i] & b[i] & c[i] & d[i])
	}
	return total
}

// MaskedCountsCSA computes the four Section VII gap-aware counts of one
// SNP pair — valid = popc(cᵢ&cⱼ), nI = popc(cᵢⱼ&sᵢ), nJ = popc(cᵢⱼ&sⱼ),
// nIJ = popc(cᵢⱼ&sᵢ&sⱼ) — through the CSA trees. Callers must have
// applied the masks to the value streams (s = s & c), as the packed
// kernels do. Bit-identical to MaskedCounts.
func MaskedCountsCSA(si, ci, sj, cj []uint64) (valid, nI, nJ, nIJ int) {
	valid = AndCountCSA(ci, cj)
	nI = AndCount3CSA(ci, cj, si)
	nJ = AndCount3CSA(ci, cj, sj)
	nIJ = andCount4CSA(ci, cj, si, sj)
	return valid, nI, nJ, nIJ
}

// MaskedCounts computes the four gap-aware counts with the plain
// hardware popcount in a single pass; the scalar reference the batched
// masked strategies are checked against.
func MaskedCounts(si, ci, sj, cj []uint64) (valid, nI, nJ, nIJ int) {
	n := len(ci)
	_, _, _ = cj[:n], si[:n], sj[:n]
	for w := 0; w < n; w++ {
		cij := ci[w] & cj[w]
		valid += bits.OnesCount64(cij)
		nI += bits.OnesCount64(cij & si[w])
		nJ += bits.OnesCount64(cij & sj[w])
		nIJ += bits.OnesCount64(cij & si[w] & sj[w])
	}
	return valid, nI, nJ, nIJ
}

// Count is the single-word popcount with the uint32 result the LD
// kernels accumulate in; every per-package popc helper delegates here so
// kernel strategy changes have one home.
func Count(x uint64) uint32 { return uint32(bits.OnesCount64(x)) }
