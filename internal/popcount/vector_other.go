//go:build !amd64

package popcount

// Non-amd64 builds have no SIMD tier; the Vector entry points degrade to
// the portable CSA kernels, which are bit-identical to the scalar path.

// HasVector reports whether a SIMD AND-count tier is available.
func HasVector() bool { return false }

// VectorName names the active SIMD tier.
func VectorName() string { return "none" }

// VectorFold reports how many word popcounts the active SIMD tier folds
// into one instruction; 0 when no tier is available.
func VectorFold() int { return 0 }

// AndCountVector is AndCount through the portable CSA kernel.
func AndCountVector(a, b []uint64) int { return AndCountCSA(a, b) }

// AndCount3Vector is AndCount3 through the portable CSA kernel.
func AndCount3Vector(a, b, c []uint64) int { return AndCount3CSA(a, b, c) }

// MaskedCountsVector computes the four gap-aware counts through the
// portable CSA kernels.
func MaskedCountsVector(si, ci, sj, cj []uint64) (valid, nI, nJ, nIJ int) {
	return MaskedCountsCSA(si, ci, sj, cj)
}
