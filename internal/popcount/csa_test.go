package popcount

import (
	"math/rand"
	"testing"
)

// fillPattern writes one of the satellite-mandated patterns into dst:
// uniform random, all-ones, all-zeros, or alternating 0101/1010 words.
func fillPattern(rng *rand.Rand, dst []uint64, pattern string) {
	for i := range dst {
		switch pattern {
		case "random":
			dst[i] = rng.Uint64()
		case "ones":
			dst[i] = ^uint64(0)
		case "zeros":
			dst[i] = 0
		case "alternating":
			if i%2 == 0 {
				dst[i] = 0x5555555555555555
			} else {
				dst[i] = 0xaaaaaaaaaaaaaaaa
			}
		default:
			panic("unknown pattern " + pattern)
		}
	}
}

var patterns = []string{"random", "ones", "zeros", "alternating"}

// testLengths covers 0, the fold boundaries (8, 16, 32) and their
// off-by-one neighbours, plus a spread of random lengths up to 1025.
func testLengths(rng *rand.Rand) []int {
	ns := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 255, 256, 1024, 1025}
	for i := 0; i < 40; i++ {
		ns = append(ns, rng.Intn(1026))
	}
	return ns
}

func TestAndCountCSAMatchesAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range testLengths(rng) {
		for _, pat := range patterns {
			a := make([]uint64, n)
			b := make([]uint64, n)
			fillPattern(rng, a, pat)
			fillPattern(rng, b, "random")
			want := AndCount(a, b)
			if got := AndCountCSA(a, b); got != want {
				t.Fatalf("AndCountCSA(n=%d, %s) = %d, want %d", n, pat, got, want)
			}
			if got := AndCountVector(a, b); got != want {
				t.Fatalf("AndCountVector(n=%d, %s) = %d, want %d", n, pat, got, want)
			}
		}
	}
}

func TestAndCount3CSAMatchesAndCount3(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range testLengths(rng) {
		for _, pat := range patterns {
			a := make([]uint64, n)
			b := make([]uint64, n)
			c := make([]uint64, n)
			fillPattern(rng, a, pat)
			fillPattern(rng, b, "random")
			fillPattern(rng, c, "random")
			want := AndCount3(a, b, c)
			if got := AndCount3CSA(a, b, c); got != want {
				t.Fatalf("AndCount3CSA(n=%d, %s) = %d, want %d", n, pat, got, want)
			}
			if got := AndCount3Vector(a, b, c); got != want {
				t.Fatalf("AndCount3Vector(n=%d, %s) = %d, want %d", n, pat, got, want)
			}
		}
	}
}

func TestMaskedCountsCSAMatchesMaskedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range testLengths(rng) {
		for _, pat := range patterns {
			si := make([]uint64, n)
			ci := make([]uint64, n)
			sj := make([]uint64, n)
			cj := make([]uint64, n)
			fillPattern(rng, si, pat)
			fillPattern(rng, ci, "random")
			fillPattern(rng, sj, "random")
			fillPattern(rng, cj, pat)
			wv, wi, wj, wij := MaskedCounts(si, ci, sj, cj)
			gv, gi, gj, gij := MaskedCountsCSA(si, ci, sj, cj)
			if gv != wv || gi != wi || gj != wj || gij != wij {
				t.Fatalf("MaskedCountsCSA(n=%d, %s) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
					n, pat, gv, gi, gj, gij, wv, wi, wj, wij)
			}
			gv, gi, gj, gij = MaskedCountsVector(si, ci, sj, cj)
			if gv != wv || gi != wi || gj != wj || gij != wij {
				t.Fatalf("MaskedCountsVector(n=%d, %s) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
					n, pat, gv, gi, gj, gij, wv, wi, wj, wij)
			}
		}
	}
}

func TestCount(t *testing.T) {
	for _, x := range wordCases {
		if got, want := Count(x), Word(x); got != uint32(want) {
			t.Fatalf("Count(%#x) = %d, want %d", x, got, want)
		}
	}
}

func TestVectorNameConsistent(t *testing.T) {
	if HasVector() == (VectorName() == "none") {
		t.Fatalf("HasVector() = %v but VectorName() = %q", HasVector(), VectorName())
	}
}

func BenchmarkAndCountStrategies(b *testing.B) {
	const n = 256 // one KC slab of words
	rng := rand.New(rand.NewSource(9))
	x := make([]uint64, n)
	y := make([]uint64, n)
	fillPattern(rng, x, "random")
	fillPattern(rng, y, "random")
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			sinkInt = AndCount(x, y)
		}
	})
	b.Run("csa", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			sinkInt = AndCountCSA(x, y)
		}
	})
	b.Run("vector-"+VectorName(), func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			sinkInt = AndCountVector(x, y)
		}
	})
}

func BenchmarkMaskedCountsStrategies(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(10))
	si := make([]uint64, n)
	ci := make([]uint64, n)
	sj := make([]uint64, n)
	cj := make([]uint64, n)
	fillPattern(rng, si, "random")
	fillPattern(rng, ci, "random")
	fillPattern(rng, sj, "random")
	fillPattern(rng, cj, "random")
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(n * 8 * 4)
		for i := 0; i < b.N; i++ {
			v, a, c, d := MaskedCounts(si, ci, sj, cj)
			sinkInt = v + a + c + d
		}
	})
	b.Run("csa", func(b *testing.B) {
		b.SetBytes(n * 8 * 4)
		for i := 0; i < b.N; i++ {
			v, a, c, d := MaskedCountsCSA(si, ci, sj, cj)
			sinkInt = v + a + c + d
		}
	})
	b.Run("vector-"+VectorName(), func(b *testing.B) {
		b.SetBytes(n * 8 * 4)
		for i := 0; i < b.N; i++ {
			v, a, c, d := MaskedCountsVector(si, ci, sj, cj)
			sinkInt = v + a + c + d
		}
	})
}

var sinkInt int
