//go:build amd64

#include "textflag.h"

// Nibble popcount table for the AVX2 tier (Mula's VPSHUFB lookup):
// byte i of each 128-bit lane holds popcount(i) for i in 0..15.
DATA lutpop<>+0(SB)/8, $0x0302020102010100
DATA lutpop<>+8(SB)/8, $0x0403030203020201
DATA lutpop<>+16(SB)/8, $0x0302020102010100
DATA lutpop<>+24(SB)/8, $0x0403030203020201
GLOBL lutpop<>(SB), RODATA|NOPTR, $32

DATA nibmask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibmask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibmask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibmask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibmask<>(SB), RODATA|NOPTR, $32

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func andCountAVX512(a, b *uint64, n int) uint64
//
// n must be a multiple of 8 (the wrapper rounds down). The main loop
// folds 32 words per stream per iteration through four independent
// VPOPCNTQ accumulators; an 8-word loop drains the remainder.
TEXT ·andCountAVX512(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	CMPQ CX, $32
	JL   tail8

loop32:
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPANDQ (DI), Z0, Z0
	VPANDQ 64(DI), Z1, Z1
	VPANDQ 128(DI), Z2, Z2
	VPANDQ 192(DI), Z3, Z3
	VPOPCNTQ Z0, Z0
	VPOPCNTQ Z1, Z1
	VPOPCNTQ Z2, Z2
	VPOPCNTQ Z3, Z3
	VPADDQ Z0, Z4, Z4
	VPADDQ Z1, Z5, Z5
	VPADDQ Z2, Z6, Z6
	VPADDQ Z3, Z7, Z7
	ADDQ $256, SI
	ADDQ $256, DI
	SUBQ $32, CX
	CMPQ CX, $32
	JGE  loop32

tail8:
	CMPQ CX, $8
	JL   reduce
	VMOVDQU64 (SI), Z0
	VPANDQ (DI), Z0, Z0
	VPOPCNTQ Z0, Z0
	VPADDQ Z0, Z4, Z4
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  tail8

reduce:
	VPADDQ Z5, Z4, Z4
	VPADDQ Z7, Z6, Z6
	VPADDQ Z6, Z4, Z4
	VEXTRACTI64X4 $1, Z4, Y0
	VPADDQ Y0, Y4, Y4
	VEXTRACTI128 $1, Y4, X0
	VPADDQ X0, X4, X4
	VPSRLDQ $8, X4, X0
	VPADDQ X0, X4, X4
	MOVQ X4, AX
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func andCount3AVX512(a, b, c *uint64, n int) uint64
//
// Three-operand AND-count for the masked kernels; n must be a multiple
// of 8.
TEXT ·andCount3AVX512(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ c+16(FP), R8
	MOVQ n+24(FP), CX
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	CMPQ CX, $16
	JL   tail8

loop16:
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VPANDQ (DI), Z0, Z0
	VPANDQ 64(DI), Z1, Z1
	VPANDQ (R8), Z0, Z0
	VPANDQ 64(R8), Z1, Z1
	VPOPCNTQ Z0, Z0
	VPOPCNTQ Z1, Z1
	VPADDQ Z0, Z4, Z4
	VPADDQ Z1, Z5, Z5
	ADDQ $128, SI
	ADDQ $128, DI
	ADDQ $128, R8
	SUBQ $16, CX
	CMPQ CX, $16
	JGE  loop16

tail8:
	CMPQ CX, $8
	JL   reduce
	VMOVDQU64 (SI), Z0
	VPANDQ (DI), Z0, Z0
	VPANDQ (R8), Z0, Z0
	VPOPCNTQ Z0, Z0
	VPADDQ Z0, Z4, Z4
	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $64, R8
	SUBQ $8, CX
	JMP  tail8

reduce:
	VPADDQ Z5, Z4, Z4
	VEXTRACTI64X4 $1, Z4, Y0
	VPADDQ Y0, Y4, Y4
	VEXTRACTI128 $1, Y4, X0
	VPADDQ X0, X4, X4
	VPSRLDQ $8, X4, X0
	VPADDQ X0, X4, X4
	MOVQ X4, AX
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func maskedCountsAVX512(si, ci, sj, cj *uint64, n int) (valid, nI, nJ, nIJ uint64)
//
// One fused pass over the four streams of a masked SNP pair: loads each
// word once and accumulates all four gap-aware counts. n must be a
// multiple of 8.
TEXT ·maskedCountsAVX512(SB), NOSPLIT, $0-72
	MOVQ si+0(FP), SI
	MOVQ ci+8(FP), DI
	MOVQ sj+16(FP), R8
	MOVQ cj+24(FP), R9
	MOVQ n+32(FP), CX
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7

loop8:
	CMPQ CX, $8
	JL   reduce
	VMOVDQU64 (DI), Z0
	VPANDQ (R9), Z0, Z0     // Z0 = ci & cj
	VMOVDQU64 (SI), Z1
	VMOVDQU64 (R8), Z2
	VPANDQ Z0, Z1, Z1       // Z1 = cij & si
	VPANDQ Z0, Z2, Z2       // Z2 = cij & sj
	VPANDQ Z1, Z2, Z3       // Z3 = cij & si & sj
	VPOPCNTQ Z0, Z0
	VPOPCNTQ Z1, Z1
	VPOPCNTQ Z2, Z2
	VPOPCNTQ Z3, Z3
	VPADDQ Z0, Z4, Z4
	VPADDQ Z1, Z5, Z5
	VPADDQ Z2, Z6, Z6
	VPADDQ Z3, Z7, Z7
	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $64, R8
	ADDQ $64, R9
	SUBQ $8, CX
	JMP  loop8

reduce:
	VEXTRACTI64X4 $1, Z4, Y0
	VPADDQ Y0, Y4, Y4
	VEXTRACTI128 $1, Y4, X0
	VPADDQ X0, X4, X4
	VPSRLDQ $8, X4, X0
	VPADDQ X0, X4, X4
	MOVQ X4, AX
	MOVQ AX, valid+40(FP)

	VEXTRACTI64X4 $1, Z5, Y0
	VPADDQ Y0, Y5, Y5
	VEXTRACTI128 $1, Y5, X0
	VPADDQ X0, X5, X5
	VPSRLDQ $8, X5, X0
	VPADDQ X0, X5, X5
	MOVQ X5, AX
	MOVQ AX, nI+48(FP)

	VEXTRACTI64X4 $1, Z6, Y0
	VPADDQ Y0, Y6, Y6
	VEXTRACTI128 $1, Y6, X0
	VPADDQ X0, X6, X6
	VPSRLDQ $8, X6, X0
	VPADDQ X0, X6, X6
	MOVQ X6, AX
	MOVQ AX, nJ+56(FP)

	VEXTRACTI64X4 $1, Z7, Y0
	VPADDQ Y0, Y7, Y7
	VEXTRACTI128 $1, Y7, X0
	VPADDQ X0, X7, X7
	VPSRLDQ $8, X7, X0
	VPADDQ X0, X7, X7
	MOVQ X7, AX
	MOVQ AX, nIJ+64(FP)

	VZEROUPPER
	RET

// func andCountAVX2(a, b *uint64, n int) uint64
//
// AVX2 tier: per-byte nibble LUT popcount (VPSHUFB) with VPSADBW
// horizontal byte sums. n must be a multiple of 4.
TEXT ·andCountAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VMOVDQU lutpop<>(SB), Y6
	VMOVDQU nibmask<>(SB), Y7
	VPXOR Y5, Y5, Y5
	VPXOR Y4, Y4, Y4

loop4:
	CMPQ CX, $4
	JL   reduce
	VMOVDQU (SI), Y0
	VPAND (DI), Y0, Y0
	VPAND Y7, Y0, Y1
	VPSRLW $4, Y0, Y0
	VPAND Y7, Y0, Y0
	VPSHUFB Y1, Y6, Y1
	VPSHUFB Y0, Y6, Y0
	VPADDB Y0, Y1, Y0
	VPSADBW Y5, Y0, Y0
	VPADDQ Y0, Y4, Y4
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  loop4

reduce:
	VEXTRACTI128 $1, Y4, X0
	VPADDQ X0, X4, X4
	VPSRLDQ $8, X4, X0
	VPADDQ X0, X4, X4
	MOVQ X4, AX
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func andCount3AVX2(a, b, c *uint64, n int) uint64
TEXT ·andCount3AVX2(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ c+16(FP), R8
	MOVQ n+24(FP), CX
	VMOVDQU lutpop<>(SB), Y6
	VMOVDQU nibmask<>(SB), Y7
	VPXOR Y5, Y5, Y5
	VPXOR Y4, Y4, Y4

loop4:
	CMPQ CX, $4
	JL   reduce
	VMOVDQU (SI), Y0
	VPAND (DI), Y0, Y0
	VPAND (R8), Y0, Y0
	VPAND Y7, Y0, Y1
	VPSRLW $4, Y0, Y0
	VPAND Y7, Y0, Y0
	VPSHUFB Y1, Y6, Y1
	VPSHUFB Y0, Y6, Y0
	VPADDB Y0, Y1, Y0
	VPSADBW Y5, Y0, Y0
	VPADDQ Y0, Y4, Y4
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	SUBQ $4, CX
	JMP  loop4

reduce:
	VEXTRACTI128 $1, Y4, X0
	VPADDQ X0, X4, X4
	VPSRLDQ $8, X4, X0
	VPADDQ X0, X4, X4
	MOVQ X4, AX
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func andCount4AVX2(a, b, c, d *uint64, n int) uint64
TEXT ·andCount4AVX2(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ c+16(FP), R8
	MOVQ d+24(FP), R9
	MOVQ n+32(FP), CX
	VMOVDQU lutpop<>(SB), Y6
	VMOVDQU nibmask<>(SB), Y7
	VPXOR Y5, Y5, Y5
	VPXOR Y4, Y4, Y4

loop4:
	CMPQ CX, $4
	JL   reduce
	VMOVDQU (SI), Y0
	VPAND (DI), Y0, Y0
	VPAND (R8), Y0, Y0
	VPAND (R9), Y0, Y0
	VPAND Y7, Y0, Y1
	VPSRLW $4, Y0, Y0
	VPAND Y7, Y0, Y0
	VPSHUFB Y1, Y6, Y1
	VPSHUFB Y0, Y6, Y0
	VPADDB Y0, Y1, Y0
	VPSADBW Y5, Y0, Y0
	VPADDQ Y0, Y4, Y4
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	SUBQ $4, CX
	JMP  loop4

reduce:
	VEXTRACTI128 $1, Y4, X0
	VPADDQ X0, X4, X4
	VPSRLDQ $8, X4, X0
	VPADDQ X0, X4, X4
	MOVQ X4, AX
	VZEROUPPER
	MOVQ AX, ret+40(FP)
	RET
