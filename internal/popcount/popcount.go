// Package popcount collects the population-count kernels the paper's
// analysis revolves around (Sections IV–V and references [17, 18]).
//
// The LD inner loop is POPCNT(sᵢ & sⱼ) accumulated over 64-bit words. On
// x86 the paper uses the POPCNT instruction; in Go, math/bits.OnesCount64
// compiles to that same instruction on amd64. The software alternatives
// (SWAR, lookup tables, Harley–Seal) are implemented here both as fallbacks
// and as ablation subjects: the paper cites [18] for the claim that software
// counters underperform the hardware instruction, and BenchmarkPopcount*
// reproduces that comparison.
package popcount

import "math/bits"

// Word counts the set bits of a single word with the hardware popcount.
func Word(x uint64) int { return bits.OnesCount64(x) }

// SWAR counts set bits with the classic carry-save/SWAR bit trick
// (Hacker's Delight, Fig. 5-2): three masking rounds and a multiply.
func SWAR(x uint64) int {
	x -= x >> 1 & 0x5555555555555555
	x = x&0x3333333333333333 + x>>2&0x3333333333333333
	x = (x + x>>4) & 0x0f0f0f0f0f0f0f0f
	return int(x * 0x0101010101010101 >> 56)
}

// lut8 is the byte-wise popcount lookup table used by Lookup8.
var lut8 [256]uint8

// lut16 is the 16-bit lookup table used by Lookup16.
var lut16 [65536]uint8

func init() {
	for i := range lut8 {
		lut8[i] = uint8(bits.OnesCount8(uint8(i)))
	}
	for i := range lut16 {
		lut16[i] = uint8(bits.OnesCount16(uint16(i)))
	}
}

// Lookup8 counts set bits via eight byte-table lookups.
func Lookup8(x uint64) int {
	return int(lut8[x&0xff] + lut8[x>>8&0xff] + lut8[x>>16&0xff] + lut8[x>>24&0xff] +
		lut8[x>>32&0xff] + lut8[x>>40&0xff] + lut8[x>>48&0xff] + lut8[x>>56&0xff])
}

// Lookup16 counts set bits via four 16-bit-table lookups.
func Lookup16(x uint64) int {
	return int(lut16[x&0xffff] + lut16[x>>16&0xffff] + lut16[x>>32&0xffff] + lut16[x>>48])
}

// Slice counts the set bits of a word slice with the hardware popcount.
func Slice(xs []uint64) int {
	n := 0
	for _, x := range xs {
		n += bits.OnesCount64(x)
	}
	return n
}

// AndCount returns Σ popcount(a[i] & b[i]) — the haplotype count
// POPCNT(sᵢ & sⱼ) of Section IV, the fundamental LD word kernel.
// The slices must have equal length.
func AndCount(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// AndCount3 returns Σ popcount(a[i] & b[i] & c[i]), the masked haplotype
// count POPCNT(c_ij & sᵢ & sⱼ) of Section VII.
func AndCount3(a, b, c []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return n
}

// csa is a carry-save adder step: (a+b+c) = 2·carry + sum, bitwise.
func csa(a, b, c uint64) (carry, sum uint64) {
	u := a ^ b
	return a&b | u&c, u ^ c
}

// HarleySeal counts the set bits of a word slice using the Harley–Seal
// carry-save-adder tree over blocks of 16 words, reducing the number of
// per-word popcounts by 16× at the cost of CSA logic ops. This is the
// strongest software counter in [17]'s survey and the natural comparison
// point for the hardware instruction.
func HarleySeal(xs []uint64) int {
	total := 0
	var ones, twos, fours, eights uint64
	i := 0
	for ; i+16 <= len(xs); i += 16 {
		var twosA, twosB, foursA, foursB, eightsA, eightsB uint64
		twosA, ones = csa(ones, xs[i], xs[i+1])
		twosB, ones = csa(ones, xs[i+2], xs[i+3])
		foursA, twos = csa(twos, twosA, twosB)
		twosA, ones = csa(ones, xs[i+4], xs[i+5])
		twosB, ones = csa(ones, xs[i+6], xs[i+7])
		foursB, twos = csa(twos, twosA, twosB)
		eightsA, fours = csa(fours, foursA, foursB)
		twosA, ones = csa(ones, xs[i+8], xs[i+9])
		twosB, ones = csa(ones, xs[i+10], xs[i+11])
		foursA, twos = csa(twos, twosA, twosB)
		twosA, ones = csa(ones, xs[i+12], xs[i+13])
		twosB, ones = csa(ones, xs[i+14], xs[i+15])
		foursB, twos = csa(twos, twosA, twosB)
		eightsB, fours = csa(fours, foursA, foursB)
		var sixteens uint64
		sixteens, eights = csa(eights, eightsA, eightsB)
		total += 16 * bits.OnesCount64(sixteens)
	}
	total += 8 * bits.OnesCount64(eights)
	total += 4 * bits.OnesCount64(fours)
	total += 2 * bits.OnesCount64(twos)
	total += bits.OnesCount64(ones)
	for ; i < len(xs); i++ {
		total += bits.OnesCount64(xs[i])
	}
	return total
}

// Counter is a single-word popcount implementation, selectable by name for
// kernel ablations.
type Counter func(uint64) int

// Counters enumerates every single-word implementation by name.
var Counters = map[string]Counter{
	"hw":       Word,
	"swar":     SWAR,
	"lookup8":  Lookup8,
	"lookup16": Lookup16,
}

// AndCountWith is AndCount parameterized by counter implementation, used by
// the popcount ablation benchmarks.
func AndCountWith(count Counter, a, b []uint64) int {
	n := 0
	for i := range a {
		n += count(a[i] & b[i])
	}
	return n
}
