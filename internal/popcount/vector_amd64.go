//go:build amd64

package popcount

import "math/bits"

// SIMD AND-count tiers for amd64. Detection is done once at init via
// CPUID/XGETBV (no cgo, no external deps): the AVX-512 tier needs
// AVX512F + VPOPCNTDQ with zmm state enabled in XCR0, the AVX2 tier
// needs AVX2 with ymm state enabled. The assembly bodies live in
// asm_amd64.s; each wrapper below rounds the length down to the
// vector's fold width and finishes with the exact scalar loop, so the
// results are bit-identical to AndCount/AndCount3/MaskedCounts on
// every input.

// Implemented in asm_amd64.s.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)
func andCountAVX512(a, b *uint64, n int) uint64
func andCount3AVX512(a, b, c *uint64, n int) uint64
func maskedCountsAVX512(si, ci, sj, cj *uint64, n int) (valid, nI, nJ, nIJ uint64)
func andCountAVX2(a, b *uint64, n int) uint64
func andCount3AVX2(a, b, c *uint64, n int) uint64
func andCount4AVX2(a, b, c, d *uint64, n int) uint64

var (
	hasAVX2         bool
	hasAVX512Popcnt bool
)

func init() {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return
	}
	xcr0, _ := xgetbvAsm()
	const ymmState = 0x6  // SSE + AVX state
	const zmmState = 0xe6 // + opmask, zmm_hi256, hi16_zmm
	if xcr0&ymmState != ymmState {
		return
	}
	_, ebx7, ecx7, _ := cpuidAsm(7, 0)
	hasAVX2 = ebx7&(1<<5) != 0
	const avx512f = 1 << 16       // CPUID(7,0).EBX
	const avx512vpopcnt = 1 << 14 // CPUID(7,0).ECX
	if xcr0&zmmState == zmmState && ebx7&avx512f != 0 && ecx7&avx512vpopcnt != 0 {
		hasAVX512Popcnt = true
	}
}

// HasVector reports whether a SIMD AND-count tier is available on this
// host; when false the Vector entry points fall through to the portable
// CSA kernels.
func HasVector() bool { return hasAVX2 || hasAVX512Popcnt }

// VectorName names the active SIMD tier for stats, tune profiles and
// /debug/vars: "avx512-vpopcntdq", "avx2-lut", or "none".
func VectorName() string {
	switch {
	case hasAVX512Popcnt:
		return "avx512-vpopcntdq"
	case hasAVX2:
		return "avx2-lut"
	default:
		return "none"
	}
}

// VectorFold reports how many word popcounts the active SIMD tier folds
// into one instruction (8 for AVX-512 VPOPCNTQ, 4 for the AVX2 ymm LUT),
// or 0 when no tier is available. Observability only: it feeds the
// popcounts-avoided driver counter.
func VectorFold() int {
	switch {
	case hasAVX512Popcnt:
		return 8
	case hasAVX2:
		return 4
	default:
		return 0
	}
}

// AndCountVector is AndCount through the best available SIMD tier,
// bit-identical to AndCount on every input.
func AndCountVector(a, b []uint64) int {
	n := len(a)
	_ = b[:n]
	var total uint64
	i := 0
	switch {
	case hasAVX512Popcnt:
		if k := n &^ 7; k > 0 {
			total = andCountAVX512(&a[0], &b[0], k)
			i = k
		}
	case hasAVX2:
		if k := n &^ 3; k > 0 {
			total = andCountAVX2(&a[0], &b[0], k)
			i = k
		}
	default:
		return AndCountCSA(a, b)
	}
	t := int(total)
	for ; i < n; i++ {
		t += bits.OnesCount64(a[i] & b[i])
	}
	return t
}

// AndCount3Vector is AndCount3 through the best available SIMD tier,
// bit-identical to AndCount3 on every input.
func AndCount3Vector(a, b, c []uint64) int {
	n := len(a)
	_, _ = b[:n], c[:n]
	var total uint64
	i := 0
	switch {
	case hasAVX512Popcnt:
		if k := n &^ 7; k > 0 {
			total = andCount3AVX512(&a[0], &b[0], &c[0], k)
			i = k
		}
	case hasAVX2:
		if k := n &^ 3; k > 0 {
			total = andCount3AVX2(&a[0], &b[0], &c[0], k)
			i = k
		}
	default:
		return AndCount3CSA(a, b, c)
	}
	t := int(total)
	for ; i < n; i++ {
		t += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return t
}

// MaskedCountsVector computes the four gap-aware counts through the best
// available SIMD tier — a single fused pass on AVX-512, four LUT passes
// on AVX2 — bit-identical to MaskedCounts on every input.
func MaskedCountsVector(si, ci, sj, cj []uint64) (valid, nI, nJ, nIJ int) {
	n := len(ci)
	_, _, _ = cj[:n], si[:n], sj[:n]
	i := 0
	switch {
	case hasAVX512Popcnt:
		if k := n &^ 7; k > 0 {
			v, a, b, ab := maskedCountsAVX512(&si[0], &ci[0], &sj[0], &cj[0], k)
			valid, nI, nJ, nIJ = int(v), int(a), int(b), int(ab)
			i = k
		}
	case hasAVX2:
		if k := n &^ 3; k > 0 {
			valid = int(andCountAVX2(&ci[0], &cj[0], k))
			nI = int(andCount3AVX2(&ci[0], &cj[0], &si[0], k))
			nJ = int(andCount3AVX2(&ci[0], &cj[0], &sj[0], k))
			nIJ = int(andCount4AVX2(&ci[0], &cj[0], &si[0], &sj[0], k))
			i = k
		}
	default:
		return MaskedCountsCSA(si, ci, sj, cj)
	}
	for ; i < n; i++ {
		cij := ci[i] & cj[i]
		valid += bits.OnesCount64(cij)
		nI += bits.OnesCount64(cij & si[i])
		nJ += bits.OnesCount64(cij & sj[i])
		nIJ += bits.OnesCount64(cij & si[i] & sj[i])
	}
	return valid, nI, nJ, nIJ
}
