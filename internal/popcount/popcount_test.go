package popcount

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

var wordCases = []uint64{
	0, 1, 0x8000000000000000, ^uint64(0),
	0x5555555555555555, 0xaaaaaaaaaaaaaaaa,
	0x0123456789abcdef, 0xfedcba9876543210,
	1 << 31, 1<<32 - 1, 1 << 63,
}

func TestSingleWordCountersAgree(t *testing.T) {
	for name, count := range Counters {
		for _, x := range wordCases {
			if got, want := count(x), bits.OnesCount64(x); got != want {
				t.Errorf("%s(%#x) = %d, want %d", name, x, got, want)
			}
		}
	}
}

func TestQuickCountersAgree(t *testing.T) {
	for name, count := range Counters {
		count := count
		f := func(x uint64) bool { return count(x) == bits.OnesCount64(x) }
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSlice(t *testing.T) {
	if got := Slice(nil); got != 0 {
		t.Fatalf("Slice(nil) = %d", got)
	}
	xs := []uint64{3, 0, ^uint64(0)}
	if got := Slice(xs); got != 2+64 {
		t.Fatalf("Slice = %d, want 66", got)
	}
}

func TestAndCount(t *testing.T) {
	a := []uint64{0b1100, 0xff00}
	b := []uint64{0b0110, 0x0ff0}
	// 0b0100 has 1 bit; 0x0f00 has 4 bits.
	if got := AndCount(a, b); got != 5 {
		t.Fatalf("AndCount = %d, want 5", got)
	}
	if got := AndCount(nil, nil); got != 0 {
		t.Fatalf("AndCount(nil) = %d", got)
	}
}

func TestAndCount3(t *testing.T) {
	a := []uint64{0b1111}
	b := []uint64{0b0111}
	c := []uint64{0b0011}
	if got := AndCount3(a, b, c); got != 2 {
		t.Fatalf("AndCount3 = %d, want 2", got)
	}
}

func TestHarleySealMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Cover the CSA block boundary (16 words) and the scalar tail.
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 48, 100, 1024} {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = rng.Uint64()
		}
		if got, want := HarleySeal(xs), Slice(xs); got != want {
			t.Fatalf("HarleySeal(n=%d) = %d, want %d", n, got, want)
		}
	}
}

func TestQuickHarleySeal(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]uint64, int(n8))
		for i := range xs {
			xs[i] = rng.Uint64()
		}
		return HarleySeal(xs) == Slice(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAndCountWith(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := make([]uint64, 40)
	b := make([]uint64, 40)
	for i := range a {
		a[i], b[i] = rng.Uint64(), rng.Uint64()
	}
	want := AndCount(a, b)
	for name, count := range Counters {
		if got := AndCountWith(count, a, b); got != want {
			t.Errorf("AndCountWith(%s) = %d, want %d", name, got, want)
		}
	}
}

func TestCSA(t *testing.T) {
	// Exhaustive over single-bit triples: a+b+c == 2*carry + sum.
	for a := uint64(0); a < 2; a++ {
		for b := uint64(0); b < 2; b++ {
			for c := uint64(0); c < 2; c++ {
				carry, sum := csa(a, b, c)
				if a+b+c != 2*carry+sum {
					t.Fatalf("csa(%d,%d,%d) = (%d,%d)", a, b, c, carry, sum)
				}
			}
		}
	}
}

func BenchmarkPopcountWordHW(b *testing.B)       { benchWord(b, Word) }
func BenchmarkPopcountWordSWAR(b *testing.B)     { benchWord(b, SWAR) }
func BenchmarkPopcountWordLookup8(b *testing.B)  { benchWord(b, Lookup8) }
func BenchmarkPopcountWordLookup16(b *testing.B) { benchWord(b, Lookup16) }

func benchWord(b *testing.B, count Counter) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]uint64, 4096)
	for i := range xs {
		xs[i] = rng.Uint64()
	}
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			sink += count(x)
		}
	}
	benchSink = sink
}

var benchSink int

func BenchmarkPopcountSlice(b *testing.B)      { benchSlice(b, Slice) }
func BenchmarkPopcountHarleySeal(b *testing.B) { benchSlice(b, HarleySeal) }

func benchSlice(b *testing.B, count func([]uint64) int) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]uint64, 4096)
	for i := range xs {
		xs[i] = rng.Uint64()
	}
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += count(xs)
	}
	benchSink = sink
}

func BenchmarkAndCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]uint64, 4096)
	y := make([]uint64, 4096)
	for i := range x {
		x[i], y[i] = rng.Uint64(), rng.Uint64()
	}
	b.SetBytes(int64(len(x) * 16))
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += AndCount(x, y)
	}
	benchSink = sink
}
