package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); !almost(got, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty MinMax did not panic")
		}
	}()
	MinMax(nil)
}

func TestSFS(t *testing.T) {
	counts := []int{1, 1, 2, 5, 0, 6, 3}
	unfolded := SFS(counts, 6, false)
	// monomorphic 0 and 6 ignored; bins: 1→2, 2→1, 3→1, 5→1
	want := []int{0, 2, 1, 1, 0, 1}
	for i := range want {
		if unfolded[i] != want[i] {
			t.Fatalf("unfolded = %v", unfolded)
		}
	}
	folded := SFS(counts, 6, true)
	// fold: min(c, 6−c): 1,1,2,1,3 → bins 1→3, 2→1, 3→1
	wantF := []int{0, 3, 1, 1}
	for i := range wantF {
		if folded[i] != wantF[i] {
			t.Fatalf("folded = %v", folded)
		}
	}
	if SFS(counts, 1, false) != nil {
		t.Fatal("samples<2 should give nil")
	}
}

func TestExpectedNeutralSFS(t *testing.T) {
	e := ExpectedNeutralSFS(4)
	// 1 + 1/2 + 1/3 = 11/6; bins: (6/11, 3/11, 2/11)
	if !almost(e[1], 6.0/11, 1e-12) || !almost(e[2], 3.0/11, 1e-12) || !almost(e[3], 2.0/11, 1e-12) {
		t.Fatalf("ExpectedNeutralSFS = %v", e)
	}
	var sum float64
	for _, v := range e {
		sum += v
	}
	if !almost(sum, 1, 1e-12) {
		t.Fatalf("spectrum sums to %v", sum)
	}
}

func TestChiSquarePValueKnown(t *testing.T) {
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{0, 1, 1},
		{3.841459, 1, 0.05},   // 95th percentile, df=1
		{6.634897, 1, 0.01},   // 99th percentile, df=1
		{5.991465, 2, 0.05},   // df=2
		{18.307038, 10, 0.05}, // df=10
	}
	for _, c := range cases {
		got, err := ChiSquarePValue(c.x, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want, 1e-6) {
			t.Fatalf("P(χ²_%d ≥ %v) = %v, want %v", c.df, c.x, got, c.want)
		}
	}
	if _, err := ChiSquarePValue(1, 0); err == nil {
		t.Fatal("df=0 accepted")
	}
	if p, _ := ChiSquarePValue(-3, 1); p != 1 {
		t.Fatalf("negative x should give 1, got %v", p)
	}
}

func TestChiSquareDF2ClosedForm(t *testing.T) {
	// For df=2 the tail is exactly exp(−x/2).
	for _, x := range []float64{0.1, 1, 2.5, 10, 30} {
		got, err := ChiSquarePValue(x, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, math.Exp(-x/2), 1e-10) {
			t.Fatalf("df=2 tail at %v: %v vs %v", x, got, math.Exp(-x/2))
		}
	}
}

func TestQuickChiSquareMonotone(t *testing.T) {
	f := func(a, b float64, df8 uint8) bool {
		x1 := math.Abs(a)
		x2 := math.Abs(b)
		if math.IsNaN(x1) || math.IsNaN(x2) || math.IsInf(x1, 0) || math.IsInf(x2, 0) {
			return true
		}
		x1, x2 = math.Mod(x1, 100), math.Mod(x2, 100)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		df := int(df8%20) + 1
		p1, err1 := ChiSquarePValue(x1, df)
		p2, err2 := ChiSquarePValue(x2, df)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1 >= p2-1e-12 && p1 <= 1 && p2 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || !almost(r, 1, 1e-12) {
		t.Fatalf("perfect correlation: %v %v", r, err)
	}
	r, err = Pearson([]float64{1, 2, 3}, []float64{3, 2, 1})
	if err != nil || !almost(r, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation: %v %v", r, err)
	}
	r, err = Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("constant vector: %v %v", r, err)
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
