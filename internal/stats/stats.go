// Package stats provides the small statistical utilities the LD library
// and its examples need: descriptive statistics, the site-frequency
// spectrum, and the χ² tail probability used to assess LD significance
// (χ² = Nseq·r² with one degree of freedom for biallelic SNPs).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of xs; it panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// SFS computes the folded or unfolded site-frequency spectrum from
// per-SNP derived-allele counts: bin i of the unfolded spectrum counts
// SNPs with exactly i derived copies (i in 1..n−1; monomorphic sites are
// ignored). The folded spectrum merges i and n−i.
func SFS(counts []int, samples int, folded bool) []int {
	if samples < 2 {
		return nil
	}
	var out []int
	if folded {
		out = make([]int, samples/2+1)
	} else {
		out = make([]int, samples)
	}
	for _, c := range counts {
		if c <= 0 || c >= samples {
			continue
		}
		if folded {
			f := c
			if samples-c < f {
				f = samples - c
			}
			out[f]++
		} else {
			out[c]++
		}
	}
	return out
}

// ExpectedNeutralSFS returns the expected unfolded neutral spectrum shape:
// bin i proportional to 1/i, normalized to sum to 1 over 1..n−1.
func ExpectedNeutralSFS(samples int) []float64 {
	if samples < 2 {
		return nil
	}
	out := make([]float64, samples)
	var norm float64
	for i := 1; i < samples; i++ {
		out[i] = 1 / float64(i)
		norm += out[i]
	}
	for i := 1; i < samples; i++ {
		out[i] /= norm
	}
	return out
}

// ChiSquarePValue returns P(X ≥ x) for a χ² random variable with df
// degrees of freedom, via the regularized upper incomplete gamma function
// Q(df/2, x/2).
func ChiSquarePValue(x float64, df int) (float64, error) {
	if df < 1 {
		return 0, fmt.Errorf("stats: invalid degrees of freedom %d", df)
	}
	if x < 0 {
		return 1, nil
	}
	return regularizedGammaQ(float64(df)/2, x/2)
}

// regularizedGammaQ computes Q(a, x) = Γ(a, x)/Γ(a) with the standard
// series/continued-fraction split (Numerical Recipes §6.2).
func regularizedGammaQ(a, x float64) (float64, error) {
	switch {
	case x < 0 || a <= 0:
		return 0, fmt.Errorf("stats: invalid gamma args a=%v x=%v", a, x)
	case x == 0:
		return 1, nil
	case x < a+1:
		p, err := gammaPSeries(a, x)
		return 1 - p, err
	default:
		return gammaQContinuedFraction(a, x)
	}
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// gammaPSeries evaluates P(a, x) by its power series.
func gammaPSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("stats: gamma series did not converge (a=%v x=%v)", a, x)
}

// gammaQContinuedFraction evaluates Q(a, x) by the Lentz continued
// fraction.
func gammaQContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("stats: gamma continued fraction did not converge (a=%v x=%v)", a, x)
}

// Pearson returns the Pearson correlation of two equal-length vectors
// (0 when either is constant).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if n == 0 {
		return 0, nil
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
