# Tier-1: everything must build and every test pass.
.PHONY: verify
verify:
	go build ./...
	go test ./...

# Race tier: vet plus the race detector on the concurrency-bearing
# packages (the parallel blis driver, the pack kernels it calls from many
# goroutines, the HTTP server that shares the arena pool and in-flight
# semaphore across requests, the scatter-gather cluster coordinator, and
# the ldserver lifecycle).
.PHONY: verify-race
verify-race:
	go vet ./...
	go test -race ./internal/blis/... ./internal/core/... ./internal/kernel/... ./internal/popcount/... ./internal/ldstore/... ./internal/ldsparse/... ./internal/server/... ./internal/cluster/... ./cmd/ldserver/...

# Cluster tier: the httptest cluster end to end — bit-identity against a
# single node (including replica failover), shard-kill → partial
# degradation, breaker trip/recover, retry, hedging, singleflight
# coalescing, and the fingerprint-keyed result cache.
.PHONY: verify-cluster
verify-cluster:
	go test -race -count=1 ./internal/cluster/ -run 'TestCluster|TestBreaker|TestRetry|TestHedge|TestPartition|TestMergeTop|TestReplica|TestCoalesce|TestResultCache|TestLatencyRing|TestFlightGroup'

# Replica-cluster resilience benchmark: in-process 2-strip × 2-replica
# cluster under randomized load, one replica killed halfway; fails on
# any error, partial, identity mismatch, or cache-probe round trip
# (the committed BENCH_cluster.json).
.PHONY: bench-cluster
bench-cluster:
	go run ./cmd/ldbench -scale 4 -cluster-duration 10s -cluster-workers 8 -cluster-json BENCH_cluster.json

# CI-sized variant of the same run.
.PHONY: bench-cluster-smoke
bench-cluster-smoke:
	go run ./cmd/ldbench -scale 20 -cluster-duration 3s -cluster-workers 4 -cluster-json /tmp/BENCH_cluster_smoke.json

# Out-of-core store-build benchmark: stream a .ldbm dataset to disk
# (never resident), build the tile store from it with windowed reads at
# 2× the allocation budget — enforced — and record build throughput plus
# the prefetch-stall counters (the committed BENCH_store.json).
.PHONY: bench-store
bench-store:
	go run ./cmd/ldbench -scale 1 -store-json BENCH_store.json

# CI-sized variant of the same run (budget reported, not enforced).
.PHONY: bench-store-smoke
bench-store-smoke:
	go run ./cmd/ldbench -scale 16 -store-json /tmp/BENCH_store_smoke.json

# Short fuzz smoke on the tile-store open paths (dense and sparse) and
# the checkpoint manifest parsers: hostile and truncated files must
# error, never panic or over-allocate (CI runs this too).
.PHONY: fuzz-smoke
fuzz-smoke:
	go test ./internal/ldstore -run=Fuzz -fuzz=FuzzStoreOpen -fuzztime=10s
	go test ./internal/ldstore -run=Fuzz -fuzz=FuzzManifest -fuzztime=10s
	go test ./internal/ldsparse -run=Fuzz -fuzz=FuzzSparseOpen -fuzztime=10s
	go test ./internal/ldsparse -run=Fuzz -fuzz=FuzzSparseManifest -fuzztime=10s

# Kernel-dispatch smoke: tiny shapes through every popcount engine
# (scalar, CSA, SIMD when present), with the batched families asserted
# bit-identical to the scalar oracle at each k before any timing is
# believed. Cheap enough for the verify tier.
.PHONY: bench-kernel
bench-kernel:
	go test ./internal/blis -count=1 -run 'TestGemmStrategiesMatchScalarOracle|TestSyrkStrategiesMatchScalarOracle|TestAutoDispatchPicksByK'
	go run ./cmd/ldbench -scale 128 -threads 1 -json /tmp/BENCH_ld_smoke.json

# Driver benchmark: seed fork/join vs pooled slab-pipelined at 1 and 4
# threads on the acceptance shape.
.PHONY: bench-driver
bench-driver:
	go test -run xxx -bench BenchmarkSyrkDriver -benchtime 3x .

# Machine-readable perf trajectory (BENCH_ld.json).
.PHONY: bench-json
bench-json:
	go run ./cmd/ldbench -scale 10 -threads 1,2,4 -json BENCH_ld.json

# Quick fused-vs-split epilogue comparison on a small probe: keeps the
# benchmark harness compiling and running in CI without full-size cost.
.PHONY: bench-smoke
bench-smoke:
	go run ./cmd/ldbench -scale 20 -threads 1,2 -epilogue-json /tmp/BENCH_epilogue_smoke.json

# Full-size epilogue benchmark (the committed BENCH_epilogue.json:
# ≥8192 SNPs, thread grid through 8).
.PHONY: bench-epilogue
bench-epilogue:
	go run ./cmd/ldbench -scale 1 -threads 1,2,4,8 -epilogue-json BENCH_epilogue.json

# Sparse/banded tier benchmark: build one dataset as dense LDTS, pruned
# LDSS, and banded LDSS; verify the sparse R·v bit-identical to a dense
# fold over the kept entries; enforce the ≥10× store-size ratio and ≥2×
# banded build speedup (the committed BENCH_sparse.json).
.PHONY: bench-sparse
bench-sparse:
	go run ./cmd/ldbench -scale 4 -sparse-json BENCH_sparse.json

# CI-sized variant of the same run (ratios reported, not enforced).
.PHONY: bench-sparse-smoke
bench-sparse-smoke:
	go run ./cmd/ldbench -scale 32 -sparse-json /tmp/BENCH_sparse_smoke.json
