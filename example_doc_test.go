package ldgemm_test

import (
	"fmt"

	"ldgemm"
)

// ExampleLD computes the full LD matrix of a small phased dataset built
// from explicit haplotype columns.
func ExampleLD() {
	// Three SNPs over six haplotypes; SNPs 0 and 1 are identical
	// (complete LD), SNP 2 is independent of both.
	g, _ := ldgemm.FromColumns([][]byte{
		{1, 1, 0, 0, 1, 0},
		{1, 1, 0, 0, 1, 0},
		{1, 0, 1, 0, 1, 0},
	})
	res, _ := ldgemm.LD(g, ldgemm.Options{Measures: ldgemm.MeasureR2})
	fmt.Printf("r²(0,1) = %.2f\n", res.At(0, 1).R2)
	fmt.Printf("r²(0,2) = %.2f\n", res.At(0, 2).R2)
	// Output:
	// r²(0,1) = 1.00
	// r²(0,2) = 0.11
}

// ExamplePairLD shows the per-pair convenience entry with all statistics.
func ExamplePairLD() {
	g, _ := ldgemm.FromColumns([][]byte{
		{1, 1, 1, 0, 0, 0, 0, 0},
		{1, 1, 0, 0, 0, 0, 0, 1},
	})
	p := ldgemm.PairLD(g, 0, 1)
	fmt.Printf("P(AB)=%.3f D=%.4f r²=%.3f\n", p.PAB, p.D, p.R2)
	// Output:
	// P(AB)=0.250 D=0.1094 r²=0.218
}

// ExampleSumR2 reduces the upper triangle without materializing n² values.
func ExampleSumR2() {
	g, _ := ldgemm.FromColumns([][]byte{
		{1, 0, 1, 0},
		{1, 0, 1, 0},
		{0, 1, 0, 1},
	})
	sum, pairs, _ := ldgemm.SumR2(g, ldgemm.StreamOptions{})
	fmt.Printf("%.0f over %d pairs\n", sum, pairs)
	// Output:
	// 6 over 6 pairs
}

// ExampleAlleleFrequencies computes Eq. 3 of the paper.
func ExampleAlleleFrequencies() {
	g, _ := ldgemm.FromColumns([][]byte{
		{1, 1, 0, 0},
		{1, 0, 0, 0},
	})
	fmt.Println(ldgemm.AlleleFrequencies(g))
	// Output:
	// [0.5 0.25]
}

// ExampleFromDNA builds a finite-sites matrix from nucleotide columns
// with gaps.
func ExampleFromDNA() {
	f, _ := ldgemm.FromDNA([][]byte{
		[]byte("AACG"),
		[]byte("TT-C"),
	})
	res, _ := ldgemm.FSMLD(f, ldgemm.Options{})
	fmt.Printf("%d SNPs, T(0,1) = %.2f\n", res.SNPs, res.T[1])
	// Output:
	// 2 SNPs, T(0,1) = 4.00
}
