// Package ldgemm computes linkage disequilibrium (LD) as dense linear
// algebra, reproducing "Efficient Computation of Linkage Disequilibria as
// Dense Linear Algebra Operations" (Alachiotis, Popovici, Low, 2016).
//
// The all-pairs haplotype-frequency matrix H = (1/Nseq)·GᵀG over a
// bit-packed genomic matrix G is a rank-k GEMM whose multiply-accumulate
// is AND + POPCNT + ADD on 64-bit words; this package drives it through a
// GotoBLAS/BLIS-style blocked kernel (packing, cache blocking, register
// micro-tiles, goroutine parallelism) and derives D, r², and D′ from the
// counts.
//
// Quick start:
//
//	g, _ := ldgemm.GenerateMosaic(10_000, 2_504, 1) // or load from ms/VCF/.bed
//	res, _ := ldgemm.LD(g, ldgemm.Options{Measures: ldgemm.MeasureR2})
//	fmt.Println(res.At(0, 1).R2)
//
// The subsystems are exposed as type aliases so the whole toolchain —
// baseline kernels, the ω-statistic sweep scan, population simulators,
// MSA/SNP-calling, file formats, the Section V SIMD model — is reachable
// from this one import.
package ldgemm

import (
	"io"

	"ldgemm/internal/assoc"
	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/ehh"
	"ldgemm/internal/ldmap"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/msa"
	"ldgemm/internal/omega"
	"ldgemm/internal/popsim"
	"ldgemm/internal/seqio"
	"ldgemm/internal/tanimoto"
)

// Matrix is a bit-packed binary genomic matrix: one column per SNP, one
// row (bit) per sample; set bits are derived alleles.
type Matrix = bitmat.Matrix

// Mask is a per-(SNP, sample) validity mask for alignment gaps and
// ambiguous characters (Section VII of the paper).
type Mask = bitmat.Mask

// GenotypeMatrix is the 2-bit packed diploid matrix used by the
// PLINK-like baseline and the .bed format.
type GenotypeMatrix = bitmat.GenotypeMatrix

// NewMatrix returns a zeroed snps×samples matrix.
func NewMatrix(snps, samples int) *Matrix { return bitmat.New(snps, samples) }

// FromRows builds a matrix from sample-major 0/1 rows.
func FromRows(rows [][]byte) (*Matrix, error) { return bitmat.FromRows(rows) }

// FromColumns builds a matrix from SNP-major 0/1 columns.
func FromColumns(cols [][]byte) (*Matrix, error) { return bitmat.FromColumns(cols) }

// NewMask returns an all-valid mask.
func NewMask(snps, samples int) *Mask { return bitmat.NewMask(snps, samples) }

// Options configures an LD computation (measures + blocking/threads).
// Set Options.Ctx to bound the computation: the blocked drivers observe
// cancellation cooperatively at slab and phase boundaries, return the
// context's error, and recycle their packing arenas on the way out.
type Options = core.Options

// BlockConfig carries the GotoBLAS blocking parameters plus the parallel
// driver's knobs: Threads (worker count), ChunkTiles (work-queue
// granularity; 0 derives it from the workload), and Ctx for cooperative
// cancellation (nil runs to completion).
type BlockConfig = blis.Config

// Measure flags select which statistics to materialize.
const (
	MeasureD      = core.MeasureD
	MeasureR2     = core.MeasureR2
	MeasureDPrime = core.MeasureDPrime
	KeepCounts    = core.KeepCounts
)

// EpilogueMode selects how haplotype counts become LD measures: fused
// into the blocked driver's tile sweep (the default) or as the legacy
// split pass over a materialized count matrix (Options.Epilogue).
type EpilogueMode = core.EpilogueMode

const (
	EpilogueAuto  = core.EpilogueAuto
	EpilogueFused = core.EpilogueFused
	EpilogueSplit = core.EpilogueSplit
)

// Result is a materialized all-pairs LD matrix.
type Result = core.Result

// Pair holds every statistic for one SNP pair.
type Pair = core.Pair

// LD computes all-pairs LD within one genomic matrix via the blocked
// rank-k update (Eq. 4/5 and Section III of the paper).
func LD(g *Matrix, opt Options) (*Result, error) { return core.Matrix(g, opt) }

// CrossLD computes LD between the SNPs of two matrices — long-range LD and
// distant-gene association (the Figure 4 workload).
func CrossLD(a, b *Matrix, opt Options) (*Result, error) { return core.Cross(a, b, opt) }

// PairLD computes the statistics of a single SNP pair directly.
func PairLD(g *Matrix, i, j int) Pair { return core.PairLD(g, i, j) }

// MaskedLD computes gap-aware all-pairs LD (Section VII).
func MaskedLD(g *Matrix, mask *Mask, opt Options) (*Result, error) {
	return core.MaskedMatrix(g, mask, opt)
}

// AlleleFrequencies returns the per-SNP derived-allele frequencies (Eq. 3).
func AlleleFrequencies(g *Matrix) []float64 { return core.AlleleFrequencies(g) }

// StreamOptions configures a striped streaming scan for matrices too large
// to materialize n² outputs.
type StreamOptions = core.StreamOptions

// StreamLD runs a striped scan, delivering one row of LD values at a time.
func StreamLD(g *Matrix, opt StreamOptions, visit func(i, j0 int, row []float64)) error {
	return core.Stream(g, opt, visit)
}

// SumR2 reduces r² over the upper triangle without materializing it.
func SumR2(g *Matrix, opt StreamOptions) (sum float64, pairs int64, err error) {
	return core.SumR2(g, opt)
}

// FSMMatrix is the finite-sites-model matrix (four nucleotide bit-planes).
type FSMMatrix = core.FSMMatrix

// FSMResult holds multi-allelic LD outputs (Zaykin's T statistic).
type FSMResult = core.FSMResult

// FromDNA builds an FSM matrix from nucleotide columns.
func FromDNA(cols [][]byte) (*FSMMatrix, error) { return core.FromDNA(cols) }

// FSMLD computes multi-allelic LD under the finite sites model
// (Section VII, Eq. 6).
func FSMLD(f *FSMMatrix, opt Options) (*FSMResult, error) { return core.FSMLD(f, opt) }

// OmegaConfig configures the ω-statistic selective-sweep scan.
type OmegaConfig = omega.Config

// OmegaPoint is one scan position with its maximized ω.
type OmegaPoint = omega.Point

// OmegaScan evaluates the Kim–Nielsen ω statistic on a grid.
func OmegaScan(g *Matrix, cfg OmegaConfig) ([]OmegaPoint, error) { return omega.Scan(g, cfg) }

// OmegaAt evaluates the maximized ω at one candidate boundary.
func OmegaAt(g *Matrix, center int, cfg OmegaConfig) (OmegaPoint, error) {
	return omega.At(g, center, cfg)
}

// MosaicConfig parameterizes the copying-model dataset generator.
type MosaicConfig = popsim.MosaicConfig

// GenerateMosaic simulates a genomic matrix with realistic LD structure
// and a neutral frequency spectrum.
func GenerateMosaic(snps, samples int, seed int64) (*Matrix, error) {
	return popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: seed})
}

// SweepConfig parameterizes the selective-sweep overlay.
type SweepConfig = popsim.SweepConfig

// ApplySweep overwrites a matrix with a hitchhiking sweep signature.
func ApplySweep(m *Matrix, cfg SweepConfig) error { return popsim.ApplySweep(m, cfg) }

// MSReplicate is one replicate of a Hudson ms file.
type MSReplicate = seqio.MSReplicate

// ReadMS parses Hudson ms output; the first replicate's matrix is the
// usual input to LD.
func ReadMS(r io.Reader) ([]MSReplicate, error) { return seqio.ReadMS(r) }

// WriteMS writes replicates in ms format.
func WriteMS(w io.Writer, reps []MSReplicate) error { return seqio.WriteMS(w, reps) }

// ReadBinary loads the compact bit-matrix container.
func ReadBinary(r io.Reader) (*Matrix, error) { return seqio.ReadBinary(r) }

// WriteBinary stores a matrix in the compact container.
func WriteBinary(w io.Writer, m *Matrix) error { return seqio.WriteBinary(w, m) }

// Alignment is a gapped multiple-sequence alignment (the input to SNP
// calling, the paper's Section I workflow).
type Alignment = msa.Alignment

// CallOptions controls the SNP caller.
type CallOptions = msa.CallOptions

// CallResult is the SNP caller's output: genomic matrix, gap mask, and
// per-SNP metadata.
type CallResult = msa.CallResult

// CallSNPs identifies biallelic segregating alignment columns and encodes
// them into a bit-packed matrix plus validity mask.
func CallSNPs(aln *Alignment, ref []byte, opt CallOptions) (*CallResult, error) {
	return msa.CallSNPs(aln, ref, opt)
}

// Fingerprints is a set of binary chemical fingerprints (Section VII's
// cross-domain adaptation).
type Fingerprints = tanimoto.Fingerprints

// RandomFingerprints generates a random fingerprint set.
func RandomFingerprints(compounds, bits int, density float64, seed int64) (*Fingerprints, error) {
	return tanimoto.Random(compounds, bits, density, seed)
}

// FingerprintMatch is one similarity-search hit.
type FingerprintMatch = tanimoto.Match

// PruneOptions configures sliding-window LD pruning (the GWAS
// preprocessing step, PLINK's --indep-pairwise).
type PruneOptions = core.PruneOptions

// PruneResult reports surviving and removed SNPs.
type PruneResult = core.PruneResult

// Prune runs LD pruning over the matrix.
func Prune(g *Matrix, opt PruneOptions) (*PruneResult, error) { return core.Prune(g, opt) }

// BlockOptions configures haplotype-block detection.
type BlockOptions = core.BlockOptions

// Block is one detected haplotype block.
type Block = core.Block

// Blocks detects haplotype blocks (runs of SNPs in strong mutual |D′|).
func Blocks(g *Matrix, opt BlockOptions) ([]Block, error) { return core.Blocks(g, opt) }

// SignificanceOptions configures the linkage-equilibrium test scan.
type SignificanceOptions = core.SignificanceOptions

// SignificanceResult summarizes an equilibrium-test scan.
type SignificanceResult = core.SignificanceResult

// Significance tests every pair against the null of linkage equilibrium
// (χ² = Nseq·r², Bonferroni-corrected by default).
func Significance(g *Matrix, opt SignificanceOptions) (*SignificanceResult, error) {
	return core.Significance(g, opt)
}

// TuneOptions bounds the blocking auto-tuner search; its Ctx field lets a
// caller abandon a long tuning sweep between measurements.
type TuneOptions = blis.TuneOptions

// TuneResult reports the winning blocked configuration.
type TuneResult = blis.TuneResult

// Tune searches micro-kernel shapes and cache block sizes for the host,
// returning a BlockConfig to pass via Options.Blis.
func Tune(opt TuneOptions) (*TuneResult, error) { return blis.Tune(opt) }

// PopcountStrategy selects the AND-count engine of the blocked kernels
// (BlockConfig.Popcount): scalar POPCNT per word-pair, the portable
// Harley–Seal CSA fold, the SIMD tier, or auto k-dispatch between them.
type PopcountStrategy = blis.PopcountStrategy

const (
	PopcountAuto   = blis.PopcountAuto
	PopcountScalar = blis.PopcountScalar
	PopcountCSA    = blis.PopcountCSA
	PopcountVector = blis.PopcountVector
)

// ParsePopcount parses a popcount strategy name ("auto", "scalar",
// "csa", "vector") as accepted by flags and tune profiles.
func ParsePopcount(name string) (PopcountStrategy, error) { return blis.ParsePopcount(name) }

// TuneProfile is the persistent, host-fingerprinted form of a tuned
// configuration (the -tune-profile file of the serving binaries).
type TuneProfile = blis.Profile

// ErrProfileStale reports a tune profile measured on different hardware
// or by an incompatible version; callers fall back to defaults.
var ErrProfileStale = blis.ErrProfileStale

// LoadTuneProfile reads and validates a saved tune profile; stale
// profiles (another host, another version) fail with ErrProfileStale.
func LoadTuneProfile(path string) (TuneProfile, error) { return blis.LoadProfile(path) }

// SaveTuneProfile persists a profile atomically with this host's
// fingerprint.
func SaveTuneProfile(path string, p TuneProfile) error { return blis.SaveProfile(path, p) }

// HostFingerprint identifies this host for tune-profile validation.
func HostFingerprint() string { return blis.HostFingerprint() }

// DriverStats is a snapshot of the blocked drivers' cumulative counters:
// completed and cancelled calls, C-cells×k-words of kernel work, wall
// time, packing-arena reuse, and the selected kernel variant/popcount
// strategy.
type DriverStats = blis.DriverStats

// KernelStats reads the process-wide driver counters — the same numbers
// ldserver exports on /debug/vars under "blis".
func KernelStats() DriverStats { return blis.ReadStats() }

// StoreStats is a snapshot of the tile-store serving counters: tiles and
// bytes read from disk, cache hits/misses/evictions, and bytes served.
type StoreStats = ldstore.Stats

// TileStoreStats reads the process-wide tile-store counters — the same
// numbers ldserver exports on /debug/vars under "store".
func TileStoreStats() StoreStats { return ldstore.ReadStats() }

// DecayOptions configures an LD decay profile.
type DecayOptions = ldmap.Options

// DecayProfile is a binned mean-r²-by-distance curve.
type DecayProfile = ldmap.Profile

// Decay computes the LD decay profile of a matrix.
func Decay(g *Matrix, opt DecayOptions) (*DecayProfile, error) { return ldmap.Decay(g, opt) }

// PhenotypeConfig parameterizes GWAS phenotype simulation.
type PhenotypeConfig = assoc.PhenotypeConfig

// CausalEffect is one causal SNP with its log-odds effect.
type CausalEffect = assoc.Effect

// Phenotypes is a simulated case/control assignment.
type Phenotypes = assoc.Phenotypes

// AssocResult is one SNP's association test result.
type AssocResult = assoc.SNPResult

// ClumpOptions configures LD-based clumping of association hits.
type ClumpOptions = assoc.ClumpOptions

// AssocClump is one clumped association region.
type AssocClump = assoc.Clump

// SimulatePhenotypes draws case/control phenotypes under a logistic model.
func SimulatePhenotypes(g *Matrix, cfg PhenotypeConfig) (*Phenotypes, error) {
	return assoc.Simulate(g, cfg)
}

// AssociationTest runs the per-SNP allelic χ² test, bit-parallel.
func AssociationTest(g *Matrix, ph *Phenotypes) ([]AssocResult, error) { return assoc.Test(g, ph) }

// ClumpAssociations groups significant hits into LD clumps.
func ClumpAssociations(g *Matrix, results []AssocResult, opt ClumpOptions) ([]AssocClump, error) {
	return assoc.ClumpResults(g, results, opt)
}

// TripleLDResult is one SNP triple's third-order disequilibrium.
type TripleLDResult = core.Triple

// TripleLD computes the three-locus disequilibrium D₃ of one triple.
func TripleLD(g *Matrix, i, j, k int) TripleLDResult { return core.TripleLD(g, i, j, k) }

// TripleScanOptions configures the windowed third-order scan.
type TripleScanOptions = core.TripleScanOptions

// TripleScan computes D₃ over all triples within a window span.
func TripleScan(g *Matrix, opt TripleScanOptions) ([]TripleLDResult, error) {
	return core.TripleScan(g, opt)
}

// GenoTable is a 3×3 joint genotype count table for unphased diploids.
type GenoTable = core.GenoTable

// EMPairLD estimates haplotype-frequency LD between two unphased diploid
// variants with Hill's (1974) EM algorithm.
func EMPairLD(g *GenotypeMatrix, i, j int) (Pair, error) { return core.EMPairLD(g, i, j) }

// EMMatrix estimates the haplotype r² matrix of unphased genotypes.
func EMMatrix(g *GenotypeMatrix) ([]float64, error) { return core.EMMatrix(g) }

// GenotypesFromHaplotypes pairs consecutive haplotypes into diploid
// genotypes (for the PLINK-like baseline, .bed export, or EM estimation).
func GenotypesFromHaplotypes(m *Matrix) (*GenotypeMatrix, error) {
	return bitmat.FromHaplotypes(m)
}

// BandOptions configures a banded (windowed) LD scan.
type BandOptions = core.BandOptions

// BandedLD computes LD only for pairs within Band SNPs of each other —
// the linear-in-n workload for chromosome-scale inputs.
func BandedLD(g *Matrix, opt BandOptions, visit func(i, j0 int, row []float64)) error {
	return core.BandedStream(g, opt, visit)
}

// BandedSumR2 reduces r² over the band without materializing it.
func BandedSumR2(g *Matrix, opt BandOptions) (sum float64, pairs int64, err error) {
	return core.BandedSumR2(g, opt)
}

// PlinkFileset is a loaded PLINK .bed/.bim/.fam triple.
type PlinkFileset = seqio.PlinkFileset

// ReadPlinkFileset loads a PLINK binary fileset by any of its paths.
func ReadPlinkFileset(path string) (*PlinkFileset, error) { return seqio.ReadPlinkFileset(path) }

// WritePlinkFileset writes genotypes as a .bed/.bim/.fam triple.
func WritePlinkFileset(prefix string, g *GenotypeMatrix, bim []seqio.BimRecord, fam []seqio.FamRecord) error {
	return seqio.WritePlinkFileset(prefix, g, bim, fam)
}

// StructuredConfig parameterizes the Balding–Nichols structured-population
// generator (the admixture-LD confounder).
type StructuredConfig = popsim.StructuredConfig

// StructuredResult carries a structured-population matrix plus its deme
// assignment.
type StructuredResult = popsim.StructuredResult

// GenerateStructured simulates unlinked SNPs over diverged demes; any LD
// in the pooled sample is pure population structure.
func GenerateStructured(snps, samples int, cfg StructuredConfig) (*StructuredResult, error) {
	return popsim.Structured(snps, samples, cfg)
}

// DecayFit is a fitted hyperbolic LD decay model (Sved/Hill–Weir shape).
type DecayFit = ldmap.FitResult

// FitDecay estimates the decay model E[r²](d) = c0/(1+a·d) + floor from a
// profile.
func FitDecay(p *DecayProfile) (DecayFit, error) { return ldmap.Fit(p) }

// EHHScore is one SNP's integrated-haplotype-score result.
type EHHScore = ehh.Score

// EHHScanOptions configures an iHS scan.
type EHHScanOptions = ehh.ScanOptions

// EHHDecay traces extended haplotype homozygosity outward from a core SNP
// on the chosen allelic background.
func EHHDecay(g *Matrix, core int, derived bool, maxSpan int) (left, right []float64, err error) {
	return ehh.Decay(g, core, derived, maxSpan)
}

// IHS computes the unstandardized integrated haplotype score of one SNP.
func IHS(g *Matrix, core, maxSpan int) (EHHScore, error) { return ehh.IHS(g, core, maxSpan) }

// IHSScan computes unstandardized iHS for every common SNP.
func IHSScan(g *Matrix, opt EHHScanOptions) ([]EHHScore, error) { return ehh.Scan(g, opt) }

// StandardizeIHS converts iHS values to z-scores within frequency bins.
func StandardizeIHS(scores []EHHScore, bins int) ([]float64, error) {
	return ehh.Standardize(scores, bins)
}

// BootstrapOptions configures bootstrap confidence intervals.
type BootstrapOptions = core.BootstrapOptions

// Interval is a bootstrap percentile confidence interval.
type Interval = core.Interval

// BootstrapPair resamples haplotypes to put confidence intervals on the
// r², D, and D′ of one SNP pair.
func BootstrapPair(g *Matrix, i, j int, opt BootstrapOptions) (r2, d, dprime Interval, err error) {
	return core.BootstrapPair(g, i, j, opt)
}
