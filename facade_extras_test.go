package ldgemm

import (
	"math"
	"testing"
	"time"
)

// TestFacadeAnalyses drives the analysis layer end to end through the
// public API: decay profile → pruning → blocks → significance → GWAS →
// third-order LD, on one simulated dataset.
func TestFacadeAnalyses(t *testing.T) {
	g, err := GenerateMosaic(300, 800, 99)
	if err != nil {
		t.Fatal(err)
	}

	profile, err := Decay(g, DecayOptions{MaxDistance: 100, Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	if profile.MeanR2[0] <= profile.MeanR2[9] {
		t.Fatalf("no decay: %v vs %v", profile.MeanR2[0], profile.MeanR2[9])
	}

	pruned, err := Prune(g, PruneOptions{WindowSNPs: 40, StepSNPs: 8, R2Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Kept)+len(pruned.Removed) != 300 {
		t.Fatal("prune partition broken")
	}
	if len(pruned.Removed) == 0 {
		t.Fatal("mosaic data should have correlated SNPs to prune")
	}

	blocks, err := Blocks(g, BlockOptions{DPrimeThreshold: 0.9, MinStrongFrac: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if b.Start >= b.End {
			t.Fatalf("bad block %+v", b)
		}
	}

	sig, err := Significance(g, SignificanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sig.Tested != 300*299/2 {
		t.Fatalf("tested %d", sig.Tested)
	}

	ph, err := SimulatePhenotypes(g, PhenotypeConfig{
		Seed: 100, Causal: []CausalEffect{{SNP: 150, Beta: 1.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AssociationTest(g, ph)
	if err != nil {
		t.Fatal(err)
	}
	clumps, err := ClumpAssociations(g, res, ClumpOptions{PThreshold: 1e-3, R2: 0.2, WindowSNPs: 50})
	if err != nil {
		t.Fatal(err)
	}
	_ = clumps // presence depends on draw strength; validated in internal/assoc

	tr := TripleLD(g, 0, 1, 2)
	if math.IsNaN(tr.D3) {
		t.Fatal("TripleLD returned NaN")
	}
	triples, err := TripleScan(g.Slice(0, 30), TripleScanOptions{MaxSpan: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) == 0 {
		t.Fatal("triple scan empty")
	}
}

func TestFacadeTune(t *testing.T) {
	res, err := Tune(TuneOptions{SNPs: 128, Samples: 512, Budget: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// The tuned config must work when passed through Options.
	g, err := GenerateMosaic(50, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	withTuned, err := LD(g, Options{Measures: MeasureR2, Blis: res.Config})
	if err != nil {
		t.Fatal(err)
	}
	withDefault, err := LD(g, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range withTuned.R2 {
		if math.Abs(withTuned.R2[i]-withDefault.R2[i]) > 1e-12 {
			t.Fatal("tuned config changed results")
		}
	}
}
