// Pipeline: the paper's full Section I workflow plus the Section VII gap
// extension, end to end:
//
//	reference genome → per-haplotype mutations → multiple-sequence
//	alignment with gaps and ambiguous characters → SNP calling →
//	gap-masked LD with the fused four-count kernel
//
// and a finite-sites pass (Zaykin's T) over the same alignment columns.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math"

	"ldgemm"
	"ldgemm/internal/msa"
	"ldgemm/internal/popsim"
)

func main() {
	const (
		refLen  = 6000
		snps    = 500
		samples = 300
	)

	// 1. Truth: a neutral population of variant haplotypes.
	truth, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: 51})
	if err != nil {
		log.Fatal(err)
	}
	positions := make([]int, snps)
	for i := range positions {
		positions[i] = 10 + i*((refLen-20)/snps)
	}

	// 2. Sequencing + alignment: plant the variants on a reference and
	// corrupt 2% of characters with gaps, 1% with ambiguous 'N's.
	ref := msa.RandomReference(52, refLen)
	aln, err := msa.FromVariants(ref, positions, truth, msa.BuildOptions{
		Seed: 53, GapRate: 0.02, AmbiguityRate: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alignment: %d sequences × %d columns (gap rate 2%%, ambiguity 1%%)\n",
		len(aln.Seqs), aln.Len())

	// 3. SNP calling: biallelic segregating sites → bit matrix + mask.
	calls, err := ldgemm.CallSNPs(aln, ref, ldgemm.CallOptions{MaxMissingFrac: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	masked := 0
	for i := 0; i < calls.Mask.SNPs; i++ {
		masked += calls.Mask.Samples - calls.Mask.ValidCount(i)
	}
	fmt.Printf("SNP calls: %d sites retained (%d multiallelic skipped), %.2f%% masked entries\n",
		calls.Matrix.SNPs, calls.Multiallelic,
		100*float64(masked)/float64(calls.Mask.SNPs*calls.Mask.Samples))

	// 4. Gap-aware LD on the called matrix: the fused masked kernel
	// computes the four Section VII counts per pair in one pass.
	res, err := ldgemm.MaskedLD(calls.Matrix, calls.Mask, ldgemm.Options{Measures: ldgemm.MeasureR2})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Fidelity check: masked LD on noisy calls vs true LD on the clean
	// variants at the same sites.
	trueAt := map[int]int{}
	for i, p := range positions {
		trueAt[p] = i
	}
	var diff, n float64
	for i := 0; i < calls.Matrix.SNPs; i++ {
		ti, ok := trueAt[calls.Positions[i]]
		if !ok {
			continue
		}
		for j := i + 1; j < calls.Matrix.SNPs; j++ {
			tj, ok := trueAt[calls.Positions[j]]
			if !ok {
				continue
			}
			want := ldgemm.PairLD(truth, ti, tj).R2
			got := res.R2[i*calls.Matrix.SNPs+j]
			d := got - want
			diff += d * d
			n++
		}
	}
	rmse := 0.0
	if n > 0 {
		rmse = math.Sqrt(diff / n)
	}
	fmt.Printf("masked-LD fidelity vs clean truth: RMSE(r²) = %.4f over %.0f pairs\n", rmse, n)
	if rmse > 0.05 {
		log.Fatalf("gap-masked LD diverged from truth (RMSE %.4f)", rmse)
	}

	// 6. Finite-sites pass over the same alignment: multi-allelic LD with
	// Zaykin's T statistic, straight from the nucleotide columns.
	cols := make([][]byte, calls.Matrix.SNPs)
	for i, p := range calls.Positions {
		col := make([]byte, len(aln.Seqs))
		for s := range aln.Seqs {
			col[s] = aln.Seqs[s][p]
		}
		cols[i] = col
	}
	fsm, err := ldgemm.FromDNA(cols)
	if err != nil {
		log.Fatal(err)
	}
	tres, err := ldgemm.FSMLD(fsm, ldgemm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var maxT float64
	var at [2]int
	for i := 0; i < tres.SNPs; i++ {
		for j := i + 1; j < tres.SNPs; j++ {
			if t := tres.T[i*tres.SNPs+j]; t > maxT {
				maxT, at = t, [2]int{i, j}
			}
		}
	}
	fmt.Printf("finite-sites pass: strongest T statistic %.1f at SNP pair (%d, %d)\n",
		maxT, at[0], at[1])
	fmt.Println("\npipeline complete.")
}
