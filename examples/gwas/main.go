// GWAS: the application the paper's introduction motivates — identify
// SNPs associated with a trait, then use LD to interpret the hits. A
// causal variant is planted in a simulated cohort; the association scan
// finds the signal smeared across its LD neighborhood, and LD clumping
// collapses it back to one region. The decay profile sets the clumping
// window.
//
//	go run ./examples/gwas
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"ldgemm"
)

func main() {
	const (
		snps    = 2000
		cohort  = 4000
		causal  = 1234
		effect  = 1.2 // log odds per derived allele
		binning = 25
	)

	g, err := ldgemm.GenerateMosaic(snps, cohort, 77)
	if err != nil {
		log.Fatal(err)
	}

	// 1. LD decay profile → how wide is the correlation neighborhood?
	profile, err := ldgemm.Decay(g, ldgemm.DecayOptions{MaxDistance: 500, Bins: binning})
	if err != nil {
		log.Fatal(err)
	}
	half := profile.HalfDecayDistance()
	window := 100
	if !math.IsNaN(half) {
		window = int(4 * half)
	}
	fmt.Printf("LD half-decay distance: %.0f SNPs → clump window %d\n", half, window)

	// 2. Phenotypes under a logistic model with one causal SNP.
	ph, err := ldgemm.SimulatePhenotypes(g, ldgemm.PhenotypeConfig{
		Seed:   78,
		Causal: []ldgemm.CausalEffect{{SNP: causal, Beta: effect}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cohort: %d samples (%d cases / %d controls)\n",
		ph.Samples, ph.NumCases, ph.Samples-ph.NumCases)

	// 3. Per-SNP association scan (bit-parallel 2×2 χ² tests).
	results, err := ldgemm.AssociationTest(g, ph)
	if err != nil {
		log.Fatal(err)
	}
	sorted := append([]ldgemm.AssocResult(nil), results...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].PValue < sorted[b].PValue })
	fmt.Println("\nstrongest single-SNP associations:")
	fmt.Println("    snp      χ²          p   odds_ratio   dist_to_causal")
	for _, r := range sorted[:6] {
		fmt.Printf("  %5d  %7.1f  %9.2e  %10.3f  %8d\n",
			r.SNP, r.Chi2, r.PValue, r.OddsRatio, abs(r.SNP-causal))
	}

	// 4. LD clumping: one region per independent signal.
	clumps, err := ldgemm.ClumpAssociations(g, results, ldgemm.ClumpOptions{
		PThreshold: 1e-6, R2: 0.2, WindowSNPs: window,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d clump(s) at p ≤ 1e-6:\n", len(clumps))
	for c, cl := range clumps {
		fmt.Printf("  clump %d: index SNP %d (p=%.2e), %d members in LD\n",
			c, cl.Index.SNP, cl.Index.PValue, len(cl.Members))
	}
	if len(clumps) == 0 {
		log.Fatal("association signal lost")
	}
	top := clumps[0]
	hit := top.Index.SNP == causal
	for _, m := range top.Members {
		if m == causal {
			hit = true
		}
	}
	if !hit {
		log.Fatalf("top clump does not contain the causal SNP %d", causal)
	}
	fmt.Printf("\ntop clump contains the planted causal SNP %d.\n", causal)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
