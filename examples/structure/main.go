// Structure: the classic LD confounder. Mixing two diverged
// subpopulations induces LD between physically *unlinked* loci — a false
// signal that long-range LD scans and GWAS must recognize. This example
// generates unlinked SNPs under the Balding–Nichols model, shows the
// pooled sample full of spurious LD, and shows it vanish within a single
// deme.
//
//	go run ./examples/structure
package main

import (
	"fmt"
	"log"

	"ldgemm"
	"ldgemm/internal/popsim"
)

func main() {
	const (
		snps    = 500
		samples = 1200
	)

	res, err := popsim.Structured(snps, samples, popsim.StructuredConfig{
		Seed: 41, Demes: 2, Fst: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := res.Matrix

	meanOffDiag := func(m *ldgemm.Matrix) float64 {
		sum, pairs, err := ldgemm.SumR2(m, ldgemm.StreamOptions{})
		if err != nil {
			log.Fatal(err)
		}
		n := float64(m.SNPs)
		return (sum - n) / (float64(pairs) - n) // remove the diagonal
	}

	pooled := meanOffDiag(g)
	fmt.Printf("unlinked SNPs, pooled sample (2 demes, Fst=0.3):\n")
	fmt.Printf("  mean off-diagonal r² = %.5f\n", pooled)

	// Restrict to deme 0: the structure disappears.
	var keep []int
	for s, d := range res.Deme {
		if d == 0 {
			keep = append(keep, s)
		}
	}
	deme0 := g.SubsetSamples(keep)
	within := meanOffDiag(deme0)
	fmt.Printf("within deme 0 only (%d samples):\n", len(keep))
	fmt.Printf("  mean off-diagonal r² = %.5f\n", within)

	fmt.Printf("\nstructure inflates background LD %.1f×.\n", pooled/within)
	if pooled < 2*within {
		log.Fatal("expected structure to inflate LD at Fst=0.3")
	}

	// A GWAS-style consequence: the significance scan finds "significant"
	// LD between unlinked loci in the pooled sample.
	sig, err := ldgemm.Significance(g, ldgemm.SignificanceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sigWithin, err := ldgemm.Significance(deme0, ldgemm.SignificanceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBonferroni-significant pairs among unlinked SNPs:\n")
	fmt.Printf("  pooled:        %d of %d\n", sig.Significant, sig.Tested)
	fmt.Printf("  within deme 0: %d of %d\n", sigWithin.Significant, sigWithin.Tested)
	if sig.Significant == 0 {
		log.Fatal("expected spurious significant LD in the pooled sample")
	}
}
