// Fingerprint: the paper's Section VII cross-domain adaptation — chemical
// similarity search over binary 2-D fingerprints with the Tanimoto
// coefficient, computed through the same AND+POPCNT GEMM machinery as LD.
// A query compound's analogs (noisy copies) are planted in a random
// library and recovered by nearest-neighbor search.
//
//	go run ./examples/fingerprint
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ldgemm"
	"ldgemm/internal/blis"
)

func main() {
	const (
		compounds = 2000
		bits      = 1024 // typical 2-D fingerprint width
		analogs   = 5
	)

	lib, err := ldgemm.RandomFingerprints(compounds, bits, 0.25, 31)
	if err != nil {
		log.Fatal(err)
	}

	// Plant analogs of compound 0: copies with ~5% of bits flipped, the
	// shape of a congeneric chemical series.
	rng := rand.New(rand.NewSource(32))
	planted := map[int]bool{}
	for len(planted) < analogs {
		id := rng.Intn(compounds-1) + 1
		if planted[id] {
			continue
		}
		planted[id] = true
		for b := 0; b < bits; b++ {
			on := lib.Has(0, b)
			if rng.Float64() < 0.05 {
				on = !on
			}
			if on {
				lib.Set(id, b)
			} else {
				lib.Clear(id, b)
			}
		}
	}

	fmt.Printf("library: %d compounds × %d-bit fingerprints; %d planted analogs of compound 0\n\n",
		compounds, bits, analogs)

	hits, err := lib.TopK(0, analogs+3, blis.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nearest neighbors of compound 0 (Tanimoto):")
	recovered := 0
	for rank, h := range hits {
		marker := ""
		if planted[h.Compound] {
			marker = "  <- planted analog"
			recovered++
		}
		fmt.Printf("  #%d  compound %4d  similarity %.4f%s\n", rank+1, h.Compound, h.Similarity, marker)
	}
	if recovered != analogs {
		log.Fatalf("recovered %d of %d analogs", recovered, analogs)
	}
	fmt.Printf("\nall %d analogs recovered in the top %d.\n", analogs, len(hits))

	// All-pairs similarity of a library subset through the blocked GEMM —
	// the bulk workload (clustering, diversity selection).
	sub, err := ldgemm.RandomFingerprints(300, bits, 0.25, 33)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := sub.AllPairs(blis.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for i := 0; i < 300; i++ {
		for j := i + 1; j < 300; j++ {
			sum += sim[i*300+j]
		}
	}
	fmt.Printf("\nall-pairs run: mean library similarity %.4f over %d pairs\n",
		sum/float64(300*299/2), 300*299/2)
}
