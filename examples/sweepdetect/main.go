// Sweepdetect: plant a selective sweep in a neutral population and
// localize it with the Kim–Nielsen ω statistic — the OmegaPlus workload
// (one of the paper's two comparison tools) running on the blocked LD
// kernel. Selective sweep theory predicts high LD on each flank of the
// selected site and low LD across it (Section I of the paper).
//
//	go run ./examples/sweepdetect
package main

import (
	"fmt"
	"log"
	"strings"

	"ldgemm"
)

func main() {
	const (
		snps      = 1200
		sequences = 400
		trueSweep = 700
	)

	// Neutral background.
	g, err := ldgemm.GenerateMosaic(snps, sequences, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Hitchhiking overlay: 85% of sequences carry the swept haplotype,
	// with recombination escape over a ±150 SNP radius.
	err = ldgemm.ApplySweep(g, ldgemm.SweepConfig{
		Seed: 12, CenterSNP: trueSweep, Radius: 150, CarrierFraction: 0.85,
	})
	if err != nil {
		log.Fatal(err)
	}

	// ω scan over a grid of candidate positions. MinEach sets the
	// smallest flank considered: too small and short neutral haplotype
	// blocks produce noise peaks; a sweep spans hundreds of SNPs, so
	// requiring ≥25 per side keeps the statistic on the sweep scale.
	points, err := ldgemm.OmegaScan(g, ldgemm.OmegaConfig{
		GridPoints: 60, MinEach: 25, MaxEach: 120,
	})
	if err != nil {
		log.Fatal(err)
	}

	best := points[0]
	maxOmega := 0.0
	for _, p := range points {
		if p.Omega > best.Omega {
			best = p
		}
		if p.Omega > maxOmega {
			maxOmega = p.Omega
		}
	}

	fmt.Printf("planted sweep at SNP %d; scanning %d grid positions\n\n", trueSweep, len(points))
	fmt.Println("position   omega")
	for _, p := range points {
		bar := strings.Repeat("#", int(40*p.Omega/maxOmega))
		marker := " "
		if p.Center == best.Center {
			marker = "<- peak"
		}
		fmt.Printf("%8d  %6.2f %s %s\n", p.Center, p.Omega, bar, marker)
	}

	fmt.Printf("\nω peak at SNP %d (ω = %.2f), window [%d, %d)\n",
		best.Center, best.Omega, best.Left, best.Right)
	err2 := int(abs(best.Center - trueSweep))
	fmt.Printf("localization error: %d SNPs (%.1f%% of the region)\n",
		err2, 100*float64(err2)/snps)
	if err2 > 150 {
		log.Fatalf("sweep localization failed: peak %d vs planted %d", best.Center, trueSweep)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
