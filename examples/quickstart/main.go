// Quickstart: simulate a small population, compute the all-pairs LD
// matrix through the blocked GEMM kernel, and report the strongest
// associations with χ² significance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"ldgemm"
	"ldgemm/internal/stats"
)

func main() {
	// 1. A genomic matrix: 500 SNPs × 1,000 sequences with realistic LD
	// block structure (in a real pipeline this comes from ReadMS/ReadVCF
	// or the SNP caller).
	g, err := ldgemm.GenerateMosaic(500, 1000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genomic matrix: %d SNPs × %d sequences (%d KiB bit-packed)\n",
		g.SNPs, g.Samples, g.SNPs*g.Words*8/1024)

	// 2. All-pairs LD: H = GᵀG/Nseq as a rank-k GEMM, then r², D, D′.
	res, err := ldgemm.LD(g, ldgemm.Options{
		Measures: ldgemm.MeasureR2 | ldgemm.MeasureD | ldgemm.MeasureDPrime,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The strongest off-diagonal associations.
	type hit struct {
		i, j int
		r2   float64
	}
	var hits []hit
	for i := 0; i < res.SNPs; i++ {
		for j := i + 1; j < res.Cols; j++ {
			hits = append(hits, hit{i, j, res.R2[i*res.Cols+j]})
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].r2 > hits[b].r2 })

	fmt.Println("\nstrongest LD pairs:")
	fmt.Println("  snp_i  snp_j      r²       D       D'     χ²        p")
	for _, h := range hits[:8] {
		p := res.At(h.i, h.j)
		chi2 := p.Chi2(g.Samples)
		pv, err := stats.ChiSquarePValue(chi2, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5d  %5d  %6.4f  %+6.4f  %+6.4f  %7.1f  %.2e\n",
			h.i, h.j, p.R2, p.D, p.DPrime, chi2, pv)
	}

	// 4. Aggregate decay: mean r² by SNP distance, the classic LD-decay
	// curve (adjacent SNPs correlated, distant ones not).
	const maxDist = 50
	sums := make([]float64, maxDist+1)
	counts := make([]int, maxDist+1)
	for _, h := range hits {
		if d := h.j - h.i; d <= maxDist {
			sums[d] += h.r2
			counts[d]++
		}
	}
	fmt.Println("\nLD decay (mean r² by SNP distance):")
	for _, d := range []int{1, 2, 5, 10, 20, 50} {
		fmt.Printf("  distance %3d: %.4f\n", d, sums[d]/float64(counts[d]))
	}
}
