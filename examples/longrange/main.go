// Longrange: compute LD *between two different genomic regions* — the
// two-matrix GEMM workload of the paper's Figure 4, used for association
// studies between distant genes and long-range LD scans. Two interacting
// regions are simulated by copying a coevolution signal across them; the
// cross-LD matrix localizes the interacting SNP pairs.
//
//	go run ./examples/longrange
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ldgemm"
)

func main() {
	const (
		snpsPerRegion = 400
		sequences     = 600
	)

	// Two physically unlinked regions (independent seeds → no background
	// LD between them).
	geneA, err := ldgemm.GenerateMosaic(snpsPerRegion, sequences, 21)
	if err != nil {
		log.Fatal(err)
	}
	geneB, err := ldgemm.GenerateMosaic(snpsPerRegion, sequences, 22)
	if err != nil {
		log.Fatal(err)
	}

	// Plant a coevolution signal (Rohlfs et al. 2010, the paper's [2]):
	// complementary mutations maintained between SNP 120 of region A and
	// SNP 310 of region B — carriers of one tend to carry the other.
	const aSite, bSite = 120, 310
	rng := rand.New(rand.NewSource(5))
	for s := 0; s < sequences; s++ {
		if geneA.Bit(aSite, s) {
			if rng.Float64() < 0.9 {
				geneB.SetBit(bSite, s)
			}
		} else if rng.Float64() < 0.9 {
			geneB.ClearBit(bSite, s)
		}
	}

	// All 400×400 cross-region LD values in one two-matrix GEMM.
	res, err := ldgemm.CrossLD(geneA, geneB, ldgemm.Options{Measures: ldgemm.MeasureR2})
	if err != nil {
		log.Fatal(err)
	}

	type hit struct {
		i, j int
		r2   float64
	}
	hits := make([]hit, 0, res.SNPs*res.Cols)
	var sum float64
	for i := 0; i < res.SNPs; i++ {
		for j := 0; j < res.Cols; j++ {
			r2 := res.R2[i*res.Cols+j]
			hits = append(hits, hit{i, j, r2})
			sum += r2
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].r2 > hits[b].r2 })

	fmt.Printf("cross-region LD: %d × %d pairs, mean r² = %.5f\n\n",
		res.SNPs, res.Cols, sum/float64(len(hits)))
	fmt.Println("strongest cross-region associations:")
	fmt.Println("  geneA_snp  geneB_snp      r²")
	for _, h := range hits[:5] {
		marker := ""
		if h.i == aSite && h.j == bSite {
			marker = "  <- planted interaction"
		}
		fmt.Printf("  %9d  %9d  %6.4f%s\n", h.i, h.j, h.r2, marker)
	}
	if hits[0].i != aSite || hits[0].j != bSite {
		log.Fatalf("planted interaction (%d,%d) not the top hit", aSite, bSite)
	}
	fmt.Println("\nthe planted gene-gene interaction is the top cross-LD signal.")
}
