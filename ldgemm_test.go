package ldgemm

import (
	"bytes"
	"math"
	"testing"
)

// TestFacadeEndToEnd drives the public API the way the README quickstart
// does: simulate, compute LD three ways, round-trip through a file format,
// and scan for a sweep.
func TestFacadeEndToEnd(t *testing.T) {
	g, err := GenerateMosaic(120, 300, 42)
	if err != nil {
		t.Fatal(err)
	}

	res, err := LD(g, Options{Measures: MeasureR2 | MeasureD | MeasureDPrime})
	if err != nil {
		t.Fatal(err)
	}
	if res.SNPs != 120 || res.R2 == nil || res.D == nil || res.DPrime == nil {
		t.Fatalf("unexpected result shape %+v", res)
	}
	// Facade entries agree with each other.
	p := PairLD(g, 3, 77)
	if math.Abs(res.R2[3*120+77]-p.R2) > 1e-12 {
		t.Fatalf("LD vs PairLD: %v vs %v", res.R2[3*120+77], p.R2)
	}

	// Cross of two halves equals the corresponding block of the full run.
	a, b := g.Slice(0, 60), g.Slice(60, 120)
	cross, err := CrossLD(a, b, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i += 13 {
		for j := 0; j < 60; j += 11 {
			if math.Abs(cross.R2[i*60+j]-res.R2[i*120+60+j]) > 1e-12 {
				t.Fatalf("cross block mismatch at (%d,%d)", i, j)
			}
		}
	}

	// Streaming reduction equals the dense sum.
	sum, pairs, err := SumR2(g, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < 120; i++ {
		for j := i; j < 120; j++ {
			want += res.R2[i*120+j]
		}
	}
	if pairs != 120*121/2 || math.Abs(sum-want) > 1e-9 {
		t.Fatalf("SumR2 = %v over %d pairs, want %v", sum, pairs, want)
	}

	// Binary round trip.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil || !back.Equal(g) {
		t.Fatalf("binary round trip: %v", err)
	}

	// Sweep + ω scan: the peak should land near the planted center.
	if err := ApplySweep(g, SweepConfig{Seed: 7, CenterSNP: 60, Radius: 40, CarrierFraction: 0.85}); err != nil {
		t.Fatal(err)
	}
	pts, err := OmegaScan(g, OmegaConfig{GridPoints: 24, MinEach: 2, MaxEach: 20})
	if err != nil {
		t.Fatal(err)
	}
	best := pts[0]
	for _, pt := range pts {
		if pt.Omega > best.Omega {
			best = pt
		}
	}
	if best.Center < 40 || best.Center > 80 {
		t.Fatalf("ω peak at %d, planted sweep at 60", best.Center)
	}
}

func TestFacadeMaskedAndFSM(t *testing.T) {
	cols := [][]byte{
		[]byte("AAGGAAGG"),
		[]byte("AAGGGGAA"),
		[]byte("AAAAGG--"),
	}
	f, err := FromDNA(cols)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := FSMLD(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fres.SNPs != 3 || len(fres.T) != 9 {
		t.Fatalf("FSM result %+v", fres)
	}

	g := NewMatrix(2, 8)
	mask := NewMask(2, 8)
	for s := 0; s < 8; s++ {
		if s%2 == 0 {
			g.SetBit(0, s)
			g.SetBit(1, s)
		}
	}
	mask.Invalidate(1, 0)
	mres, err := MaskedLD(g, mask, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	if mres.R2[1] <= 0.9 { // identical SNPs, still near-perfect LD under the mask
		t.Fatalf("masked r² = %v", mres.R2[1])
	}

	freqs := AlleleFrequencies(g)
	if freqs[0] != 0.5 {
		t.Fatalf("freqs = %v", freqs)
	}
}

func TestFacadeMSRoundTrip(t *testing.T) {
	g, err := GenerateMosaic(9, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 9)
	for i := range pos {
		pos[i] = float64(i) / 10
	}
	var buf bytes.Buffer
	if err := WriteMS(&buf, []MSReplicate{{Matrix: g, Positions: pos}}); err != nil {
		t.Fatal(err)
	}
	reps, err := ReadMS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reps[0].Matrix.Equal(g) {
		t.Fatal("ms round trip through facade failed")
	}
}
