package main

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/ehh"
)

// runIHS executes the -stat ihs scan: unstandardized iHS per common SNP,
// standardized within frequency bins, strongest |z| summarized last.
func runIHS(stdout io.Writer, g *bitmat.Matrix, maxSpan int, minMAF float64, bins int) error {
	scores, err := ehh.Scan(g, ehh.ScanOptions{MaxSpan: maxSpan, MinMAF: minMAF})
	if err != nil {
		return err
	}
	if len(scores) == 0 {
		return fmt.Errorf("omegascan: no SNPs pass the MAF filter")
	}
	z, err := ehh.Standardize(scores, bins)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	fmt.Fprintln(w, "snp,derived_freq,ihh_derived,ihh_ancestral,unstd_ihs,std_ihs")
	best, bestAbs := 0, 0.0
	for i, s := range scores {
		fmt.Fprintf(w, "%d,%.4f,%.3f,%.3f,%.4f,%.4f\n",
			s.SNP, s.DerivedFrequency, s.IHHDerived, s.IHHAncestral, s.UnstandardizedIHS, z[i])
		if a := math.Abs(z[i]); a > bestAbs {
			best, bestAbs = i, a
		}
	}
	fmt.Fprintf(w, "# peak |iHS|: SNP %d, z = %.3f\n", scores[best].SNP, z[best])
	return nil
}
