package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ldgemm/internal/popsim"
	"ldgemm/internal/seqio"
)

func writeSweepDataset(t *testing.T) string {
	t.Helper()
	m, err := popsim.Mosaic(200, 120, popsim.MosaicConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := popsim.ApplySweep(m, popsim.SweepConfig{Seed: 4, CenterSNP: 100, Radius: 40}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.ldgm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := seqio.WriteBinary(f, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOmegascanOutput(t *testing.T) {
	path := writeSweepDataset(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-grid", "9", "-min-each", "10", "-max-each", "40"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "center,omega,left,right" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 11 { // header + 9 points + peak comment
		t.Fatalf("%d lines:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[10], "# peak:") {
		t.Fatalf("missing peak line: %q", lines[10])
	}
	// Every data row parses and ω ≥ 0.
	for _, line := range lines[1:10] {
		f := strings.Split(line, ",")
		if len(f) != 4 {
			t.Fatalf("bad row %q", line)
		}
		om, err := strconv.ParseFloat(f[1], 64)
		if err != nil || om < 0 {
			t.Fatalf("bad omega in %q", line)
		}
	}
}

func TestOmegascanMSInput(t *testing.T) {
	m, err := popsim.Mosaic(60, 30, popsim.MosaicConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 60)
	for i := range pos {
		pos[i] = float64(i) / 60
	}
	path := filepath.Join(t.TempDir(), "d.ms")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := seqio.WriteMS(f, []seqio.MSReplicate{{Matrix: m, Positions: pos}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-grid", "3", "-max-each", "10"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "center,omega") {
		t.Fatal("no scan output")
	}
}

func TestOmegascanErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(nil, &out, &errBuf); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.ldgm"}, &out, &errBuf); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeSweepDataset(t)
	if err := run([]string{"-in", path, "-min-each", "1"}, &out, &errBuf); err == nil {
		t.Fatal("min-each=1 accepted")
	}
}

func TestOmegascanIHS(t *testing.T) {
	path := writeSweepDataset(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-stat", "ihs", "-max-span", "60"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "snp,derived_freq,ihh_derived,ihh_ancestral,unstd_ihs,std_ihs" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) < 20 {
		t.Fatalf("only %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[len(lines)-1], "# peak |iHS|:") {
		t.Fatalf("missing peak line %q", lines[len(lines)-1])
	}
}

func TestOmegascanBadStat(t *testing.T) {
	path := writeSweepDataset(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-stat", "zeta"}, &out, &errBuf); err == nil {
		t.Fatal("unknown stat accepted")
	}
}
