// Command omegascan scans a genomic dataset for selective sweeps, with
// either the Kim–Nielsen ω statistic (the OmegaPlus workload built on the
// blocked LD kernel) or the Voight iHS haplotype statistic.
//
// Usage:
//
//	omegascan -in sweep.ldgm -grid 50 -max-each 200
//	omegascan -in sweep.ldgm -stat ihs -max-span 200
//
// ω output: one line per grid position with the maximized ω and the
// maximizing window, then the global peak. iHS output: one line per
// common SNP with iHH values and the standardized score, then the peak
// |iHS|.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/omega"
	"ldgemm/internal/seqio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "omegascan:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("omegascan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input path (.ldgm or .ms; required)")
	stat := fs.String("stat", "omega", "selection statistic: omega (Kim–Nielsen) or ihs (Voight)")
	grid := fs.Int("grid", 100, "number of evaluation positions (omega)")
	minEach := fs.Int("min-each", 2, "minimum SNPs on each side of a candidate site (omega)")
	maxEach := fs.Int("max-each", 100, "maximum SNPs on each side of a candidate site (omega)")
	maxSpan := fs.Int("max-span", 200, "EHH trace distance per side in SNPs (ihs)")
	minMAF := fs.Float64("min-maf", 0.05, "minimum minor-allele frequency (ihs)")
	bins := fs.Int("bins", 20, "frequency bins for iHS standardization (ihs)")
	threads := fs.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	g, err := load(*in)
	if err != nil {
		return err
	}
	if *stat == "ihs" {
		return runIHS(stdout, g, *maxSpan, *minMAF, *bins)
	}
	if *stat != "omega" {
		return fmt.Errorf("unknown statistic %q (want omega or ihs)", *stat)
	}

	cfg := omega.Config{
		GridPoints: *grid,
		MinEach:    *minEach,
		MaxEach:    *maxEach,
		LD:         core.Options{Blis: blis.Config{Threads: *threads}},
	}
	points, err := omega.Scan(g, cfg)
	if err != nil {
		return err
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	fmt.Fprintf(w, "center,omega,left,right\n")
	best := points[0]
	for _, p := range points {
		fmt.Fprintf(w, "%d,%.4f,%d,%d\n", p.Center, p.Omega, p.Left, p.Right)
		if p.Omega > best.Omega {
			best = p
		}
	}
	fmt.Fprintf(w, "# peak: center=%d omega=%.4f window=[%d,%d)\n",
		best.Center, best.Omega, best.Left, best.Right)
	return nil
}

func load(path string) (*bitmat.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".ms", ".txt":
		reps, err := seqio.ReadMS(f)
		if err != nil {
			return nil, err
		}
		return reps[0].Matrix, nil
	default:
		return seqio.ReadBinary(f)
	}
}
