// Command ldcalc computes all-pairs linkage disequilibrium for a genomic
// dataset using the blocked GEMM kernel.
//
// Usage:
//
//	ldcalc -in data.ldgm -measure r2 -top 20
//	ldcalc -in sim.ms -measure dprime -matrix -out ld.csv
//	ldcalc -in calls.vcf -summary
//	ldcalc -in data.ldgm -prune -blocks -decay
//	ldcalc -in cohort.bed -em 20
//
// Input formats are detected from the extension (.ldgm, .ms, .vcf) or set
// with -format. Output modes: -summary (default) prints aggregate LD
// statistics; -top K lists the K strongest off-diagonal pairs with χ²
// significance; -matrix dumps the full dense matrix as CSV; -prune,
// -blocks, and -decay run the sliding-window pruner, haplotype-block
// detector, and decay profiler; -ld-out emits tabular .ld records; -em K
// reads a PLINK .bed/.bim/.fam fileset and reports the strongest pairs by
// EM-estimated haplotype r².
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/seqio"
	"ldgemm/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ldcalc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldcalc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input path (required)")
	format := fs.String("format", "", "input format: ldgm, ms, vcf (default: from extension)")
	measure := fs.String("measure", "r2", "LD measure: r2, d, dprime")
	threads := fs.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	top := fs.Int("top", 0, "print the K strongest off-diagonal pairs")
	matrix := fs.Bool("matrix", false, "dump the full dense matrix as CSV")
	summary := fs.Bool("summary", false, "print aggregate statistics (default if nothing else chosen)")
	prune := fs.Bool("prune", false, "run sliding-window LD pruning")
	pruneWindow := fs.Int("prune-window", 50, "pruning window in SNPs")
	pruneStep := fs.Int("prune-step", 5, "pruning window step")
	pruneR2 := fs.Float64("prune-r2", 0.5, "pruning r² threshold")
	blocks := fs.Bool("blocks", false, "detect haplotype blocks")
	blocksDPrime := fs.Float64("blocks-dprime", 0.8, "block |D'| threshold")
	blocksFrac := fs.Float64("blocks-frac", 0.9, "block strong-pair fraction")
	decay := fs.Bool("decay", false, "print the LD decay profile")
	decayMax := fs.Int("decay-max", 200, "decay profile maximum distance (SNPs)")
	decayBins := fs.Int("decay-bins", 40, "decay profile bins")
	ldOut := fs.Bool("ld-out", false, "emit pairs in tabular .ld format")
	ldFloor := fs.Float64("ld-floor", 0.2, "minimum |value| for -ld-out records")
	em := fs.Int("em", 0, "with a .bed fileset: print the K strongest pairs by EM haplotype r²")
	out := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	if *em > 0 {
		fileset, err := seqio.ReadPlinkFileset(*in)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(stdout)
		defer w.Flush()
		return runEM(w, fileset, *em)
	}
	g, err := load(*in, *format)
	if err != nil {
		return err
	}

	var meas core.Measure
	switch strings.ToLower(*measure) {
	case "r2":
		meas = core.MeasureR2
	case "d":
		meas = core.MeasureD
	case "dprime":
		meas = core.MeasureDPrime
	default:
		return fmt.Errorf("unknown measure %q (want r2, d, dprime)", *measure)
	}

	w := bufio.NewWriter(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	if !*matrix && *top == 0 && !*prune && !*blocks && !*decay && !*ldOut {
		*summary = true
	}
	opt := core.Options{Measures: meas, Blis: blis.Config{Threads: *threads}}

	if *summary {
		if err := printSummary(w, g, opt); err != nil {
			return err
		}
	}
	if *top > 0 {
		if err := printTop(w, g, opt, meas, *top); err != nil {
			return err
		}
	}
	if *matrix {
		if err := printMatrix(w, g, opt, meas); err != nil {
			return err
		}
	}
	if *prune {
		if err := runPrune(w, g, *threads, *pruneWindow, *pruneStep, *pruneR2); err != nil {
			return err
		}
	}
	if *blocks {
		if err := runBlocks(w, g, *threads, *blocksDPrime, *blocksFrac); err != nil {
			return err
		}
	}
	if *decay {
		if err := runDecay(w, g, *threads, *decayMax, *decayBins); err != nil {
			return err
		}
	}
	if *ldOut {
		if err := runLDOut(w, g, *threads, meas, *ldFloor); err != nil {
			return err
		}
	}
	return nil
}

func load(path, format string) (*bitmat.Matrix, error) {
	if format == "" {
		switch filepath.Ext(path) {
		case ".ldgm", ".bin":
			format = "ldgm"
		case ".ms", ".txt":
			format = "ms"
		case ".vcf":
			format = "vcf"
		default:
			return nil, fmt.Errorf("cannot infer format of %q; use -format", path)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "ldgm":
		return seqio.ReadBinary(f)
	case "ms":
		reps, err := seqio.ReadMS(f)
		if err != nil {
			return nil, err
		}
		return reps[0].Matrix, nil
	case "vcf":
		v, err := seqio.ReadVCF(f)
		if err != nil {
			return nil, err
		}
		return v.Matrix, nil
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func printSummary(w *bufio.Writer, g *bitmat.Matrix, opt core.Options) error {
	sum, pairs, err := core.SumR2(g, core.StreamOptions{Options: opt})
	if err != nil {
		return err
	}
	offDiag := pairs - int64(g.SNPs)
	// Diagonal r² is 1 for every polymorphic SNP; subtract to report the
	// informative mean.
	poly := 0
	for i := 0; i < g.SNPs; i++ {
		if c := g.DerivedCount(i); c > 0 && c < g.Samples {
			poly++
		}
	}
	fmt.Fprintf(w, "SNPs:               %d\n", g.SNPs)
	fmt.Fprintf(w, "sequences:          %d\n", g.Samples)
	fmt.Fprintf(w, "polymorphic SNPs:   %d\n", poly)
	fmt.Fprintf(w, "pairs (incl diag):  %d\n", pairs)
	if offDiag > 0 {
		fmt.Fprintf(w, "mean off-diag r²:   %.6f\n", (sum-float64(poly))/float64(offDiag))
	}
	freqs := core.AlleleFrequencies(g)
	fmt.Fprintf(w, "mean derived freq:  %.4f\n", stats.Mean(freqs))
	return nil
}

type pairHit struct {
	i, j int
	v    float64
}

func printTop(w *bufio.Writer, g *bitmat.Matrix, opt core.Options, meas core.Measure, k int) error {
	hits := make([]pairHit, 0, k+1)
	sopt := core.StreamOptions{Options: opt, Triangular: true}
	sopt.Measures = meas
	err := core.Stream(g, sopt, func(i, j0 int, row []float64) {
		for t, v := range row {
			j := j0 + t
			if j == i {
				continue
			}
			av := v
			if av < 0 {
				av = -av
			}
			if len(hits) < k || av > abs(hits[len(hits)-1].v) {
				hits = append(hits, pairHit{i, j, v})
				sort.Slice(hits, func(a, b int) bool { return abs(hits[a].v) > abs(hits[b].v) })
				if len(hits) > k {
					hits = hits[:k]
				}
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "snp_i,snp_j,value,chi2,p_value\n")
	for _, h := range hits {
		p := core.PairLD(g, h.i, h.j)
		chi2 := p.Chi2(g.Samples)
		pv, err := stats.ChiSquarePValue(chi2, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d,%d,%.6f,%.3f,%.3e\n", h.i, h.j, h.v, chi2, pv)
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func printMatrix(w *bufio.Writer, g *bitmat.Matrix, opt core.Options, meas core.Measure) error {
	sopt := core.StreamOptions{Options: opt}
	sopt.Measures = meas
	return core.Stream(g, sopt, func(i, j0 int, row []float64) {
		for t, v := range row {
			if t > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, "%.6g", v)
		}
		w.WriteByte('\n')
	})
}
