package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
	"ldgemm/internal/seqio"
)

// writeDataset writes a small deterministic matrix and returns its path.
func writeDataset(t *testing.T, snps, samples int) string {
	t.Helper()
	m, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.ldgm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := seqio.WriteBinary(f, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func runLdcalc(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), err
}

func TestLdcalcSummary(t *testing.T) {
	path := writeDataset(t, 40, 50)
	out, err := runLdcalc(t, "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SNPs:               40", "sequences:          50", "mean off-diag r²"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLdcalcTop(t *testing.T) {
	path := writeDataset(t, 30, 60)
	out, err := runLdcalc(t, "-in", path, "-top", "3")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "snp_i,snp_j,value,chi2,p_value" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
}

func TestLdcalcMatrixDimensions(t *testing.T) {
	path := writeDataset(t, 12, 30)
	out, err := runLdcalc(t, "-in", path, "-matrix")
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 12 || len(strings.Split(rows[0], ",")) != 12 {
		t.Fatalf("matrix shape %dx%d", len(rows), len(strings.Split(rows[0], ",")))
	}
}

func TestLdcalcPruneBlocksDecay(t *testing.T) {
	path := writeDataset(t, 60, 80)
	out, err := runLdcalc(t, "-in", path, "-prune", "-prune-window", "20", "-blocks", "-decay", "-decay-max", "30", "-decay-bins", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pruning: kept", "haplotype blocks", "distance,mean_r2,pairs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestLdcalcLDOutParses(t *testing.T) {
	path := writeDataset(t, 25, 70)
	out, err := runLdcalc(t, "-in", path, "-ld-out", "-ld-floor", "0.05")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := seqio.ReadLD(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.R2 < 0.05 && r.R2 > -0.05 {
			t.Fatalf("record below floor: %+v", r)
		}
	}
}

func TestLdcalcEM(t *testing.T) {
	m, err := popsim.Mosaic(10, 40, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g, err := bitmat.FromHaplotypes(m)
	if err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(t.TempDir(), "cohort")
	if err := seqio.WritePlinkFileset(prefix, g, nil, nil); err != nil {
		t.Fatal(err)
	}
	out, err := runLdcalc(t, "-in", prefix+".bed", "-em", "4")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "snp_i,snp_j,id_i,id_j,em_r2,em_d,em_dprime" || len(lines) != 5 {
		t.Fatalf("em output:\n%s", out)
	}
}

func TestLdcalcOutFile(t *testing.T) {
	path := writeDataset(t, 10, 20)
	outPath := filepath.Join(t.TempDir(), "res.txt")
	if _, err := runLdcalc(t, "-in", path, "-out", outPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "SNPs:") {
		t.Fatalf("file output %q", data)
	}
}

func TestLdcalcErrors(t *testing.T) {
	if _, err := runLdcalc(t); err == nil {
		t.Fatal("missing -in accepted")
	}
	if _, err := runLdcalc(t, "-in", "/nonexistent.ldgm"); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeDataset(t, 5, 10)
	if _, err := runLdcalc(t, "-in", path, "-measure", "zeta"); err == nil {
		t.Fatal("bad measure accepted")
	}
	if _, err := runLdcalc(t, "-in", "x.weird"); err == nil {
		t.Fatal("unknown extension accepted")
	}
}
