package main

import (
	"bufio"
	"fmt"
	"math"
	"sort"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/ldmap"
	"ldgemm/internal/seqio"
)

// runPrune executes the -prune analysis: sliding-window LD pruning.
func runPrune(w *bufio.Writer, g *bitmat.Matrix, threads int, window, step int, r2 float64) error {
	res, err := core.Prune(g, core.PruneOptions{
		WindowSNPs: window, StepSNPs: step, R2Threshold: r2,
		LD: core.Options{Blis: blis.Config{Threads: threads}},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pruning: kept %d of %d SNPs (window %d, step %d, r² > %g removed)\n",
		len(res.Kept), g.SNPs, window, step, r2)
	fmt.Fprint(w, "kept:")
	for _, i := range res.Kept {
		fmt.Fprintf(w, " %d", i)
	}
	fmt.Fprintln(w)
	return nil
}

// runBlocks executes the -blocks analysis: haplotype block detection.
func runBlocks(w *bufio.Writer, g *bitmat.Matrix, threads int, dprime, frac float64) error {
	blocks, err := core.Blocks(g, core.BlockOptions{
		DPrimeThreshold: dprime, MinStrongFrac: frac,
		LD: core.Options{Blis: blis.Config{Threads: threads}},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "haplotype blocks (|D'| ≥ %g in ≥ %.0f%% of pairs): %d\n",
		dprime, 100*frac, len(blocks))
	fmt.Fprintln(w, "start,end,snps,strong_frac")
	for _, b := range blocks {
		fmt.Fprintf(w, "%d,%d,%d,%.3f\n", b.Start, b.End, b.SNPs(), b.StrongFrac)
	}
	return nil
}

// runDecay executes the -decay analysis: the LD decay profile.
func runDecay(w *bufio.Writer, g *bitmat.Matrix, threads int, maxDist, bins int) error {
	p, err := ldmap.Decay(g, ldmap.Options{
		MaxDistance: maxDist, Bins: bins,
		LD: core.Options{Blis: blis.Config{Threads: threads}},
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "distance,mean_r2,pairs")
	for b := range p.Centers {
		fmt.Fprintf(w, "%.1f,%.6f,%d\n", p.Centers[b], p.MeanR2[b], p.Counts[b])
	}
	if hd := p.HalfDecayDistance(); !math.IsNaN(hd) {
		fmt.Fprintf(w, "# half-decay distance: %.1f SNPs\n", hd)
	}
	return nil
}

// runLDOut writes every pair above a floor to the tabular .ld format.
func runLDOut(w *bufio.Writer, g *bitmat.Matrix, threads int, measure core.Measure, floor float64) error {
	// Positions are synthesized on an even grid (no map information in
	// the matrix container).
	var recs []seqio.LDRecord
	sopt := core.StreamOptions{
		Options:    core.Options{Measures: measure, Blis: blis.Config{Threads: threads}},
		Triangular: true,
	}
	err := core.Stream(g, sopt, func(i, j0 int, row []float64) {
		for t, v := range row {
			j := j0 + t
			if j == i {
				continue
			}
			av := v
			if av < 0 {
				av = -av
			}
			if av < floor {
				continue
			}
			p := core.PairLD(g, i, j)
			recs = append(recs, seqio.LDRecord{
				ChromA: "1", PosA: 1 + i*100, IDA: fmt.Sprintf("snp_%d", i),
				ChromB: "1", PosB: 1 + j*100, IDB: fmt.Sprintf("snp_%d", j),
				R2: p.R2, D: p.D, DPrime: p.DPrime,
			})
		}
	})
	if err != nil {
		return err
	}
	return seqio.WriteLD(w, recs)
}

// runEM computes EM haplotype-frequency LD for an unphased PLINK fileset:
// the strongest K pairs by EM r² (Hill 1974), as PLINK does for
// genotype data.
func runEM(w *bufio.Writer, fs *seqio.PlinkFileset, top int) error {
	g := fs.Genotypes
	type hit struct {
		i, j int
		p    core.Pair
	}
	var hits []hit
	for i := 0; i < g.SNPs; i++ {
		for j := i + 1; j < g.SNPs; j++ {
			p, err := core.EMPairLD(g, i, j)
			if err != nil {
				return err
			}
			hits = append(hits, hit{i, j, p})
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].p.R2 > hits[b].p.R2 })
	if top > len(hits) {
		top = len(hits)
	}
	fmt.Fprintln(w, "snp_i,snp_j,id_i,id_j,em_r2,em_d,em_dprime")
	for _, h := range hits[:top] {
		fmt.Fprintf(w, "%d,%d,%s,%s,%.6f,%.6f,%.6f\n",
			h.i, h.j, fs.Variants[h.i].ID, fs.Variants[h.j].ID, h.p.R2, h.p.D, h.p.DPrime)
	}
	return nil
}
