package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/seqio"
)

func runDatagen(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestDatagenBinaryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ldgm")
	_, stderr, err := runDatagen(t, "-snps", "30", "-samples", "20", "-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "wrote 30 SNPs × 20 sequences") {
		t.Fatalf("stderr %q", stderr)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := seqio.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.SNPs != 30 || m.Samples != 20 {
		t.Fatalf("dims %dx%d", m.SNPs, m.Samples)
	}
}

func TestDatagenMSToStdout(t *testing.T) {
	out, _, err := runDatagen(t, "-snps", "8", "-samples", "6", "-format", "ms")
	if err != nil {
		t.Fatal(err)
	}
	reps, err := seqio.ReadMS(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Matrix.SNPs != 8 || reps[0].Matrix.Samples != 6 {
		t.Fatalf("dims %dx%d", reps[0].Matrix.SNPs, reps[0].Matrix.Samples)
	}
}

func TestDatagenVCF(t *testing.T) {
	out, _, err := runDatagen(t, "-snps", "5", "-samples", "8", "-format", "vcf")
	if err != nil {
		t.Fatal(err)
	}
	v, err := seqio.ReadVCF(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if v.Matrix.SNPs != 5 || v.Matrix.Samples != 8 || v.Ploidy != 2 {
		t.Fatalf("vcf %dx%d ploidy %d", v.Matrix.SNPs, v.Matrix.Samples, v.Ploidy)
	}
}

func TestDatagenDataset(t *testing.T) {
	out, _, err := runDatagen(t, "-dataset", "A", "-scale", "200", "-format", "ms")
	if err != nil {
		t.Fatal(err)
	}
	reps, err := seqio.ReadMS(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Matrix.SNPs != 50 { // 10000/200
		t.Fatalf("snps %d", reps[0].Matrix.SNPs)
	}
}

func TestDatagenSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ldgm")
	if _, _, err := runDatagen(t, "-snps", "100", "-samples", "40",
		"-sweep", "50", "-sweep-radius", "20", "-out", path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestDatagenErrors(t *testing.T) {
	if _, _, err := runDatagen(t, "-dataset", "Z"); err == nil {
		t.Fatal("bad dataset accepted")
	}
	if _, _, err := runDatagen(t, "-format", "nope"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, _, err := runDatagen(t, "-snps", "5", "-samples", "7", "-format", "vcf"); err == nil {
		t.Fatal("odd haplotypes for vcf accepted")
	}
	if _, _, err := runDatagen(t, "-sweep", "9999", "-snps", "10", "-samples", "4"); err == nil {
		t.Fatal("out-of-range sweep accepted")
	}
	if _, _, err := runDatagen(t, "-not-a-flag"); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestDatagenBed(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "geno")
	_, stderr, err := runDatagen(t,
		"-snps", "24", "-samples", "20", "-format", "bed", "-out", prefix+".bed")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "10 diploid samples") {
		t.Fatalf("stderr %q", stderr)
	}
	for _, ext := range []string{".bed", ".bim", ".fam"} {
		if _, err := os.Stat(prefix + ext); err != nil {
			t.Fatalf("missing fileset member %s: %v", ext, err)
		}
	}
	fsRead, err := seqio.ReadPlinkFileset(prefix + ".bed")
	if err != nil {
		t.Fatalf("ReadPlinkFileset: %v", err)
	}
	g := fsRead.Genotypes
	if g.SNPs != 24 || g.Samples != 10 {
		t.Fatalf("fileset dims %dx%d, want 24x10", g.SNPs, g.Samples)
	}
	if len(fsRead.Variants) != 24 || len(fsRead.Samples) != 10 {
		t.Fatalf("bim/fam lengths %d/%d", len(fsRead.Variants), len(fsRead.Samples))
	}
	// Pseudo-phasing the written genotypes must reproduce their dosages:
	// the .bed content is FromHaplotypes of the generated haplotypes, and
	// PseudoPhase is its dosage-exact inverse.
	m, err := g.PseudoPhase()
	if err != nil {
		t.Fatalf("PseudoPhase: %v", err)
	}
	back, err := bitmat.FromHaplotypes(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.SNPs; i++ {
		for s := 0; s < g.Samples; s++ {
			if back.Get(i, s) != g.Get(i, s) {
				t.Fatalf("dosage changed at (%d,%d)", i, s)
			}
		}
	}
}

func TestDatagenBedErrors(t *testing.T) {
	if _, _, err := runDatagen(t, "-snps", "8", "-samples", "6", "-format", "bed"); err == nil {
		t.Fatal("bed without -out accepted")
	}
	prefix := filepath.Join(t.TempDir(), "odd")
	if _, _, err := runDatagen(t,
		"-snps", "8", "-samples", "7", "-format", "bed", "-out", prefix); err == nil {
		t.Fatal("odd haplotype count accepted for bed")
	}
}

// TestDatagenLDBM: the resident ldbm path writes a loadable container
// with the generated matrix's exact bits.
func TestDatagenLDBM(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ldbm")
	_, stderr, err := runDatagen(t, "-snps", "40", "-samples", "24", "-format", "ldbm", "-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "ldbm: "+path) {
		t.Fatalf("stderr %q", stderr)
	}
	f, err := bitmat.OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumSNPs() != 40 || f.NumSamples() != 24 {
		t.Fatalf("dims %dx%d", f.NumSNPs(), f.NumSamples())
	}
	if _, _, err := runDatagen(t, "-snps", "4", "-samples", "4", "-format", "ldbm"); err == nil {
		t.Fatal("ldbm without -out accepted")
	}
}

// TestDatagenStreamLDBM: -stream writes a deterministic, window-invariant
// container without materializing the dataset.
func TestDatagenStreamLDBM(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.ldbm")
	b := filepath.Join(dir, "b.ldbm")
	if _, _, err := runDatagen(t, "-stream", "-snps", "120", "-samples", "30", "-seed", "5",
		"-format", "ldbm", "-out", a, "-window", "7"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runDatagen(t, "-stream", "-snps", "120", "-samples", "30", "-seed", "5",
		"-format", "ldbm", "-out", b, "-window", "64"); err != nil {
		t.Fatal(err)
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("streamed container depends on window size")
	}
	f, err := bitmat.OpenFile(a, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumSNPs() != 120 || f.NumSamples() != 30 {
		t.Fatalf("dims %dx%d", f.NumSNPs(), f.NumSamples())
	}
}

// TestDatagenStreamBed: the streamed PLINK fileset is readable, has
// matching metadata counts, and is window-invariant byte for byte.
func TestDatagenStreamBed(t *testing.T) {
	dir := t.TempDir()
	one := filepath.Join(dir, "one")
	two := filepath.Join(dir, "two")
	if _, _, err := runDatagen(t, "-stream", "-snps", "90", "-samples", "28", "-seed", "3",
		"-format", "bed", "-out", one, "-window", "11"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runDatagen(t, "-stream", "-snps", "90", "-samples", "28", "-seed", "3",
		"-format", "bed", "-out", two, "-window", "90"); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".bed", ".bim", ".fam"} {
		x, err := os.ReadFile(one + ext)
		if err != nil {
			t.Fatal(err)
		}
		y, err := os.ReadFile(two + ext)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(x, y) {
			t.Fatalf("%s depends on window size", ext)
		}
	}
	fileset, err := seqio.ReadPlinkFileset(one + ".bed")
	if err != nil {
		t.Fatal(err)
	}
	if fileset.Genotypes.SNPs != 90 || fileset.Genotypes.Samples != 14 {
		t.Fatalf("fileset dims %dx%d", fileset.Genotypes.SNPs, fileset.Genotypes.Samples)
	}
	if len(fileset.Variants) != 90 || len(fileset.Samples) != 14 {
		t.Fatalf("metadata counts bim=%d fam=%d", len(fileset.Variants), len(fileset.Samples))
	}
}

func TestDatagenStreamErrors(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.ldbm")
	if _, _, err := runDatagen(t, "-stream", "-format", "ldbm"); err == nil {
		t.Fatal("-stream without -out accepted")
	}
	if _, _, err := runDatagen(t, "-stream", "-dataset", "A", "-format", "ldbm", "-out", out); err == nil {
		t.Fatal("-stream with -dataset accepted")
	}
	if _, _, err := runDatagen(t, "-stream", "-sweep", "5", "-format", "ldbm", "-out", out); err == nil {
		t.Fatal("-stream with -sweep accepted")
	}
	if _, _, err := runDatagen(t, "-stream", "-format", "ms", "-out", out); err == nil {
		t.Fatal("-stream with ms format accepted")
	}
	if _, _, err := runDatagen(t, "-stream", "-snps", "10", "-samples", "9",
		"-format", "bed", "-out", filepath.Join(dir, "odd")); err == nil {
		t.Fatal("odd haplotype count for streamed bed accepted")
	}
}
