// Command datagen generates synthetic genomic datasets: the paper's
// evaluation datasets A/B/C (or custom dimensions), optionally with a
// planted selective sweep, in any supported output format.
//
// Usage:
//
//	datagen -dataset A -scale 10 -out a.ldgm
//	datagen -snps 5000 -samples 1000 -sweep 2500 -format ms -out sweep.ms
//	datagen -stream -snps 10000000 -samples 2000 -format ldbm -out huge.ldbm
//
// Formats: ldgm (compact binary), ms (Hudson), vcf (phased diploid), bed
// (PLINK .bed/.bim/.fam fileset; haplotypes are paired into diploid
// genotypes), ldbm (the out-of-core bit-matrix container ldstore build
// consumes directly).
//
// -stream generates row windows on the fly (ldbm and bed only), so the
// dataset never resides in memory: arbitrarily long chromosomes write in
// O(window + samples) space. Streamed output is deterministic in (dims,
// seed, window-invariant) but uses a different generator interleaving
// than the resident path, so the bits differ from a non-stream run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
	"ldgemm/internal/seqio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataset := fs.String("dataset", "", "paper dataset to generate: A, B, or C (overrides -snps/-samples)")
	scale := fs.Int("scale", 1, "divide dataset dimensions by this factor")
	snps := fs.Int("snps", 1000, "number of SNPs (custom dataset)")
	samples := fs.Int("samples", 500, "number of sequences (custom dataset)")
	seed := fs.Int64("seed", 1, "random seed")
	founders := fs.Int("founders", 0, "mosaic founder haplotypes (0 = default)")
	switchRate := fs.Float64("switch", 0, "mosaic per-SNP founder switch rate (0 = default)")
	sweep := fs.Int("sweep", -1, "plant a selective sweep centered at this SNP index (-1 = none)")
	sweepRadius := fs.Int("sweep-radius", 0, "sweep hitchhiking radius in SNPs (0 = default)")
	sweepFrac := fs.Float64("sweep-frac", 0, "sweep carrier fraction (0 = default)")
	format := fs.String("format", "ldgm", "output format: ldgm, ms, vcf, bed, or ldbm")
	out := fs.String("out", "", "output path (default stdout)")
	stream := fs.Bool("stream", false,
		"generate row windows on the fly (ldbm/bed only; incompatible with -dataset and -sweep)")
	window := fs.Int("window", 0, "rows per streamed window (0 = default 1024)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *stream {
		if *dataset != "" || *sweep >= 0 {
			return fmt.Errorf("-stream generates mosaic datasets only (no -dataset, no -sweep)")
		}
		if *out == "" {
			return fmt.Errorf("-stream requires -out")
		}
		cfg := popsim.MosaicConfig{Seed: *seed, Founders: *founders, SwitchRate: *switchRate}
		sn := *snps / max(*scale, 1)
		sa := max(*samples/max(*scale, 1), 2)
		return runStream(*format, *out, sn, sa, cfg, *window, stderr)
	}

	var m *bitmat.Matrix
	var err error
	if *dataset != "" {
		var ds popsim.Dataset
		switch strings.ToUpper(*dataset) {
		case "A":
			ds = popsim.DatasetA
		case "B":
			ds = popsim.DatasetB
		case "C":
			ds = popsim.DatasetC
		default:
			return fmt.Errorf("unknown dataset %q (want A, B, or C)", *dataset)
		}
		m, err = ds.Generate(*scale)
	} else {
		m, err = popsim.Mosaic(*snps/max(*scale, 1), max(*samples/max(*scale, 1), 2), popsim.MosaicConfig{
			Seed: *seed, Founders: *founders, SwitchRate: *switchRate,
		})
	}
	if err != nil {
		return err
	}

	if *sweep >= 0 {
		err = popsim.ApplySweep(m, popsim.SweepConfig{
			Seed: *seed + 1, CenterSNP: *sweep, Radius: *sweepRadius, CarrierFraction: *sweepFrac,
		})
		if err != nil {
			return err
		}
	}

	// The ldbm container is written by path (its header is patched after
	// the data lands), so it cannot share the single-stream writer below.
	if *format == "ldbm" {
		if *out == "" {
			return fmt.Errorf("ldbm output requires -out")
		}
		if err := bitmat.WriteFile(*out, m); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "datagen: wrote %d SNPs × %d sequences (ldbm: %s)\n", m.SNPs, m.Samples, *out)
		return nil
	}

	// The bed format is a three-file PLINK fileset addressed by prefix, so
	// it cannot share the single-stream writer below.
	if *format == "bed" {
		if *out == "" {
			return fmt.Errorf("bed output requires -out (a fileset prefix, e.g. -out data for data.bed/.bim/.fam)")
		}
		if m.Samples%2 != 0 {
			return fmt.Errorf("bed output needs an even haplotype count, have %d", m.Samples)
		}
		geno, err := bitmat.FromHaplotypes(m)
		if err != nil {
			return err
		}
		prefix := strings.TrimSuffix(*out, ".bed")
		if err := seqio.WritePlinkFileset(prefix,
			geno, seqio.DefaultBim(m.SNPs, "1", 100), seqio.DefaultFam(geno.Samples)); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "datagen: wrote %d SNPs × %d sequences (bed: %s.bed/.bim/.fam, %d diploid samples)\n",
			m.SNPs, m.Samples, prefix, geno.Samples)
		return nil
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "ldgm":
		err = seqio.WriteBinary(w, m)
	case "ms":
		pos := make([]float64, m.SNPs)
		for i := range pos {
			pos[i] = float64(i) / float64(max(m.SNPs, 1))
		}
		err = seqio.WriteMS(w, []seqio.MSReplicate{{Matrix: m, Positions: pos}})
	case "vcf":
		if m.Samples%2 != 0 {
			return fmt.Errorf("vcf output needs an even haplotype count, have %d", m.Samples)
		}
		sites := make([]seqio.VCFSite, m.SNPs)
		for i := range sites {
			sites[i] = seqio.VCFSite{Chrom: "1", Pos: 1 + i*100, Ref: 'A', Alt: 'G'}
		}
		err = seqio.WriteVCF(w, m, sites, 2)
	default:
		return fmt.Errorf("unknown format %q (want ldgm, ms, vcf, bed, or ldbm)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "datagen: wrote %d SNPs × %d sequences (%s)\n", m.SNPs, m.Samples, *format)
	return nil
}

// runStream generates a mosaic dataset window by window and writes it
// without ever materializing the matrix — the genome-scale input path.
func runStream(format, out string, snps, samples int, cfg popsim.MosaicConfig, window int, stderr io.Writer) error {
	if window < 1 {
		window = 1024
	}
	switch format {
	case "ldbm":
		if err := popsim.MosaicToLDBM(out, snps, samples, cfg, window); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "datagen: streamed %d SNPs × %d sequences (ldbm: %s, window %d)\n",
			snps, samples, out, window)
		return nil
	case "bed":
		return streamBed(out, snps, samples, cfg, window, stderr)
	}
	return fmt.Errorf("-stream supports ldbm or bed output, not %q", format)
}

// streamBed writes a PLINK fileset window by window: each haplotype
// window pairs into diploid genotypes and appends to .bed, with matching
// .bim records; .fam is written once at the end.
func streamBed(out string, snps, samples int, cfg popsim.MosaicConfig, window int, stderr io.Writer) error {
	if samples%2 != 0 {
		return fmt.Errorf("bed output needs an even haplotype count, have %d", samples)
	}
	prefix := strings.TrimSuffix(out, ".bed")
	s, err := popsim.NewMosaicStream(snps, samples, cfg)
	if err != nil {
		return err
	}
	bedF, err := os.Create(prefix + ".bed")
	if err != nil {
		return err
	}
	defer bedF.Close()
	bimF, err := os.Create(prefix + ".bim")
	if err != nil {
		return err
	}
	defer bimF.Close()
	bw, err := seqio.NewBEDWriter(bedF, samples/2)
	if err != nil {
		return err
	}
	lo := 0
	for {
		m, err := s.Next(window)
		if err != nil {
			return err
		}
		if m == nil {
			break
		}
		g, err := bitmat.FromHaplotypes(m)
		if err != nil {
			return err
		}
		if err := bw.WriteWindow(g); err != nil {
			return err
		}
		recs := make([]seqio.BimRecord, m.SNPs)
		for i := range recs {
			recs[i] = seqio.BimRecord{
				Chrom: "1", ID: fmt.Sprintf("snp_%d", lo+i),
				Pos: 1 + (lo+i)*100, Allele1: 'G', Allele2: 'A',
			}
		}
		if err := seqio.WriteBim(bimF, recs); err != nil {
			return err
		}
		lo += m.SNPs
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	famF, err := os.Create(prefix + ".fam")
	if err != nil {
		return err
	}
	defer famF.Close()
	if err := seqio.WriteFam(famF, seqio.DefaultFam(samples/2)); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "datagen: streamed %d SNPs × %d sequences (bed: %s.bed/.bim/.fam, %d diploid samples, window %d)\n",
		snps, samples, prefix, samples/2, window)
	return nil
}
