// Command datagen generates synthetic genomic datasets: the paper's
// evaluation datasets A/B/C (or custom dimensions), optionally with a
// planted selective sweep, in any supported output format.
//
// Usage:
//
//	datagen -dataset A -scale 10 -out a.ldgm
//	datagen -snps 5000 -samples 1000 -sweep 2500 -format ms -out sweep.ms
//
// Formats: ldgm (compact binary), ms (Hudson), vcf (phased diploid), bed
// (PLINK .bed/.bim/.fam fileset; haplotypes are paired into diploid
// genotypes).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
	"ldgemm/internal/seqio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataset := fs.String("dataset", "", "paper dataset to generate: A, B, or C (overrides -snps/-samples)")
	scale := fs.Int("scale", 1, "divide dataset dimensions by this factor")
	snps := fs.Int("snps", 1000, "number of SNPs (custom dataset)")
	samples := fs.Int("samples", 500, "number of sequences (custom dataset)")
	seed := fs.Int64("seed", 1, "random seed")
	founders := fs.Int("founders", 0, "mosaic founder haplotypes (0 = default)")
	switchRate := fs.Float64("switch", 0, "mosaic per-SNP founder switch rate (0 = default)")
	sweep := fs.Int("sweep", -1, "plant a selective sweep centered at this SNP index (-1 = none)")
	sweepRadius := fs.Int("sweep-radius", 0, "sweep hitchhiking radius in SNPs (0 = default)")
	sweepFrac := fs.Float64("sweep-frac", 0, "sweep carrier fraction (0 = default)")
	format := fs.String("format", "ldgm", "output format: ldgm, ms, vcf, or bed")
	out := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m *bitmat.Matrix
	var err error
	if *dataset != "" {
		var ds popsim.Dataset
		switch strings.ToUpper(*dataset) {
		case "A":
			ds = popsim.DatasetA
		case "B":
			ds = popsim.DatasetB
		case "C":
			ds = popsim.DatasetC
		default:
			return fmt.Errorf("unknown dataset %q (want A, B, or C)", *dataset)
		}
		m, err = ds.Generate(*scale)
	} else {
		m, err = popsim.Mosaic(*snps/max(*scale, 1), max(*samples/max(*scale, 1), 2), popsim.MosaicConfig{
			Seed: *seed, Founders: *founders, SwitchRate: *switchRate,
		})
	}
	if err != nil {
		return err
	}

	if *sweep >= 0 {
		err = popsim.ApplySweep(m, popsim.SweepConfig{
			Seed: *seed + 1, CenterSNP: *sweep, Radius: *sweepRadius, CarrierFraction: *sweepFrac,
		})
		if err != nil {
			return err
		}
	}

	// The bed format is a three-file PLINK fileset addressed by prefix, so
	// it cannot share the single-stream writer below.
	if *format == "bed" {
		if *out == "" {
			return fmt.Errorf("bed output requires -out (a fileset prefix, e.g. -out data for data.bed/.bim/.fam)")
		}
		if m.Samples%2 != 0 {
			return fmt.Errorf("bed output needs an even haplotype count, have %d", m.Samples)
		}
		geno, err := bitmat.FromHaplotypes(m)
		if err != nil {
			return err
		}
		prefix := strings.TrimSuffix(*out, ".bed")
		if err := seqio.WritePlinkFileset(prefix,
			geno, seqio.DefaultBim(m.SNPs, "1", 100), seqio.DefaultFam(geno.Samples)); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "datagen: wrote %d SNPs × %d sequences (bed: %s.bed/.bim/.fam, %d diploid samples)\n",
			m.SNPs, m.Samples, prefix, geno.Samples)
		return nil
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "ldgm":
		err = seqio.WriteBinary(w, m)
	case "ms":
		pos := make([]float64, m.SNPs)
		for i := range pos {
			pos[i] = float64(i) / float64(max(m.SNPs, 1))
		}
		err = seqio.WriteMS(w, []seqio.MSReplicate{{Matrix: m, Positions: pos}})
	case "vcf":
		if m.Samples%2 != 0 {
			return fmt.Errorf("vcf output needs an even haplotype count, have %d", m.Samples)
		}
		sites := make([]seqio.VCFSite, m.SNPs)
		for i := range sites {
			sites[i] = seqio.VCFSite{Chrom: "1", Pos: 1 + i*100, Ref: 'A', Alt: 'G'}
		}
		err = seqio.WriteVCF(w, m, sites, 2)
	default:
		return fmt.Errorf("unknown format %q (want ldgm, ms, vcf, or bed)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "datagen: wrote %d SNPs × %d sequences (%s)\n", m.SNPs, m.Samples, *format)
	return nil
}
