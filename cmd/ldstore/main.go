// Command ldstore builds and inspects on-disk tile stores of precomputed
// LD statistics: run the blocked GEMM once, then serve any number of
// point, region, or top-K queries without touching the kernels again.
//
// Usage:
//
//	ldstore build -in data.ldgm -out data.ldts [-tile 256] [-stat r2] [-compress]
//	ldstore build -in data.ldbm -out data.ldts [-mmap] [-io-window 1024] [-checkpoint]
//	ldstore build -in data.ldbm -out data.ldts -resume
//	ldstore build -in data.ldbm -out data.ldts -split-chrom data.bim [-split-workers 4]
//	ldstore build -in data.ldbm -out data.ldss -sparse -threshold 0.2 [-band 500]
//	ldstore convert -in data.bed -out data.ldbm [-window 1024]
//	ldstore info -store data.ldts (or a .ldss sparse store)
//	ldstore query -store data.ldts -i 3 -j 7
//	ldstore query -store data.ldts -start 100 -end 120
//	ldstore query -store data.ldts -top 25
//
// A .ldbm input is the out-of-core path: the bit matrix stays on disk
// (windowed reads, or -mmap) and the build streams double-buffered panel
// pairs through the GEMM, so genome-scale inputs never need to fit in
// memory. -checkpoint makes progress durable per stripe; -resume restarts
// a killed build where it left off, producing byte-identical output.
//
// -sparse writes a threshold-pruned CSR container (ldsparse's LDSS
// format) instead of the dense tile store: entries with |value| below
// -threshold are dropped in the fused epilogue, and -band W restricts
// the build to pairs within |i−j| ≤ W, skipping far-off-diagonal GEMM
// panels entirely. The out-of-core, checkpoint, and split-chrom
// machinery all apply to sparse builds too.
//
// The build output is the file ldserver's -store flag consumes. All query
// output is JSON on stdout.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/ldsparse"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/seqio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ldstore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ldstore build|info|query [flags] (-h for details)")
	}
	switch args[0] {
	case "build":
		return runBuild(args[1:], stdout, stderr)
	case "convert":
		return runConvert(args[1:], stdout, stderr)
	case "info":
		return runInfo(args[1:], stdout, stderr)
	case "query":
		return runQuery(args[1:], stdout, stderr)
	}
	return fmt.Errorf("unknown subcommand %q (want build, convert, info, or query)", args[0])
}

func runBuild(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dataset path (.ldbm for out-of-core, or .ldgm/.ms, optionally gzipped; required)")
	out := fs.String("out", "", "tile store output path (required)")
	tile := fs.Int("tile", 0, "tile side NT in SNPs (0 = default 256)")
	stat := fs.String("stat", "r2", "statistic to precompute: r2, d, or dprime")
	compress := fs.Bool("compress", false, "DEFLATE-compress each tile")
	threads := fs.Int("threads", 0, "kernel threads (0 = GOMAXPROCS)")
	mmap := fs.Bool("mmap", false, "memory-map a .ldbm input instead of windowed reads")
	ioWindow := fs.Int("io-window", 0, "out-of-core column-panel width in SNPs (0 = default 1024)")
	checkpoint := fs.Bool("checkpoint", false,
		"keep a durable per-stripe checkpoint (<out>.ckpt/.idx) so a killed build can -resume")
	resume := fs.Bool("resume", false, "resume a checkpointed build from where it left off (implies -checkpoint)")
	splitChrom := fs.String("split-chrom", "",
		"variant .bim path; build one store per chromosome, inserting .chr<N> before the output extension")
	splitWorkers := fs.Int("split-workers", 0,
		"per-chromosome builds running concurrently under -split-chrom (0 = GOMAXPROCS, capped at 4)")
	sparse := fs.Bool("sparse", false,
		"write a threshold-pruned sparse CSR store (LDSS) instead of a dense tile store")
	threshold := fs.Float64("threshold", 0,
		"with -sparse: drop entries with |value| below this threshold")
	band := fs.Int("band", -1,
		"with -sparse: compute only pairs within |i-j| <= band, skipping off-band GEMM (-1 = full matrix; 0 = diagonal only)")
	tuneProfile := fs.String("tune-profile", "",
		"per-host tune profile JSON (ldbench -write-tune-profile output); corrupt or stale profiles are logged and ignored")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("-in and -out are required")
	}
	st, err := ldstore.ParseStat(*stat)
	if err != nil {
		return err
	}
	src, closeSrc, err := openSource(*in, *mmap)
	if err != nil {
		return err
	}
	defer closeSrc()
	// The build is one long batch of kernel calls, so a tuned kernel
	// config pays off most here; like ldserver, a bad profile is logged
	// and ignored — it must never block a build.
	bcfg := blis.Config{Threads: *threads}
	if *tuneProfile != "" {
		if p, err := blis.LoadProfile(*tuneProfile); err != nil {
			fmt.Fprintf(stderr, "ldstore: ignoring tune profile %s: %v\n", *tuneProfile, err)
		} else if cfg, err := p.Config(); err != nil {
			fmt.Fprintf(stderr, "ldstore: ignoring tune profile %s: %v\n", *tuneProfile, err)
		} else {
			if *threads != 0 {
				cfg.Threads = *threads
			}
			bcfg = cfg
			fmt.Fprintf(stderr, "ldstore: tune profile %s: kernel %s, popcount %s, MC/NC/KC %d/%d/%d\n",
				*tuneProfile, p.Kernel, p.Popcount, p.MC, p.NC, p.KC)
		}
	}
	if !*sparse {
		if *threshold != 0 {
			return fmt.Errorf("-threshold requires -sparse")
		}
		if *band >= 0 {
			return fmt.Errorf("-band requires -sparse")
		}
	} else if *compress {
		return fmt.Errorf("-compress applies to dense tile stores, not -sparse (CSR payloads are already pruned)")
	}
	var build buildFunc
	if *sparse {
		build = sparseBuildFunc(ldsparse.SourceBuildOptions{
			BuildOptions: ldsparse.BuildOptions{
				TileSize: *tile, Stat: st, Threshold: *threshold,
				Banded: *band >= 0, Band: max(*band, 0),
				LD: core.Options{Blis: bcfg},
			},
			IOPanelSNPs: *ioWindow,
			Checkpoint:  *checkpoint,
			Resume:      *resume,
		})
	} else {
		build = denseBuildFunc(ldstore.SourceBuildOptions{
			BuildOptions: ldstore.BuildOptions{
				TileSize: *tile, Stat: st, Compress: *compress,
				LD: core.Options{Blis: bcfg},
			},
			IOPanelSNPs: *ioWindow,
			Checkpoint:  *checkpoint,
			Resume:      *resume,
		})
	}
	if *splitChrom != "" {
		if *resume || *checkpoint {
			// Each per-chromosome store checkpoints independently; the flags
			// still apply, they just bind to the per-chromosome paths.
			fmt.Fprintf(stderr, "ldstore: checkpoints apply per chromosome store\n")
		}
		return buildSplit(*out, src, build, *splitChrom, *splitWorkers, stderr)
	}
	return build(*out, src, stderr)
}

// buildFunc runs one store build (dense or sparse) and reports to stderr.
type buildFunc func(out string, src bitmat.Source, stderr io.Writer) error

// resumeHint prints the re-run hint when a checkpointing build died with
// durable progress. Dense and sparse builds share the PartialError type.
func resumeHint(err error, out string, checkpointing bool, stderr io.Writer) {
	var pe *ldstore.PartialError
	if errors.As(err, &pe) && checkpointing {
		fmt.Fprintf(stderr, "ldstore: %d/%d stripes durable in %s; re-run with -resume to continue\n",
			pe.FlushedStripes, pe.TotalStripes, out)
	}
}

// denseBuildFunc runs a single out-of-core (or delegated in-RAM) dense
// tile-store build and reports the result.
func denseBuildFunc(opt ldstore.SourceBuildOptions) buildFunc {
	return func(out string, src bitmat.Source, stderr io.Writer) error {
		res, err := ldstore.BuildFileFromSource(out, src, opt)
		if err != nil {
			resumeHint(err, out, opt.Checkpoint || opt.Resume, stderr)
			return err
		}
		resumed := ""
		if res.StartStripe > 0 {
			resumed = fmt.Sprintf(", resumed at stripe %d", res.StartStripe)
		}
		fmt.Fprintf(stderr, "ldstore: wrote %s: %d tiles, %d bytes (%s, %d×%d, peak result memory %d bytes%s)\n",
			out, res.Tiles, res.FileBytes, opt.Stat, src.NumSNPs(), src.NumSamples(), res.PeakResultBytes, resumed)
		return nil
	}
}

// sparseBuildFunc runs a single threshold-pruned sparse store build.
func sparseBuildFunc(opt ldsparse.SourceBuildOptions) buildFunc {
	return func(out string, src bitmat.Source, stderr io.Writer) error {
		res, err := ldsparse.BuildFileFromSource(out, src, opt)
		if err != nil {
			resumeHint(err, out, opt.Checkpoint || opt.Resume, stderr)
			return err
		}
		banded := ""
		if opt.Banded {
			banded = fmt.Sprintf(", band %d", opt.Band)
		}
		resumed := ""
		if res.StartStripe > 0 {
			resumed = fmt.Sprintf(", resumed at stripe %d", res.StartStripe)
		}
		fmt.Fprintf(stderr, "ldstore: wrote %s: %d tiles, %d entries, %d bytes (sparse %s, threshold %g%s, %d×%d%s)\n",
			out, res.Tiles, res.NNZ, res.FileBytes, opt.Stat, opt.Threshold, banded,
			src.NumSNPs(), src.NumSamples(), resumed)
		return nil
	}
}

// buildSplit builds one store per chromosome of a .bim variant file whose
// records align row-for-row with the input. Each chromosome must be one
// contiguous block, as in a sorted fileset; the per-chromosome stores are
// byte-identical to whole-matrix builds of those row ranges. Up to
// workers chromosomes build concurrently: each build writes its own
// output file and reads panels through its own buffers, so the outputs
// are byte-identical to a sequential run regardless of worker count.
func buildSplit(out string, src bitmat.Source, build buildFunc, bimPath string, workers int, stderr io.Writer) error {
	f, err := os.Open(bimPath)
	if err != nil {
		return err
	}
	bim, err := seqio.ReadBim(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(bim) != src.NumSNPs() {
		return fmt.Errorf("-split-chrom %s has %d variants, input has %d SNPs", bimPath, len(bim), src.NumSNPs())
	}
	type chromRun struct {
		chrom  string
		lo, hi int
	}
	var runs []chromRun
	seen := map[string]bool{}
	for i, rec := range bim {
		if len(runs) > 0 && runs[len(runs)-1].chrom == rec.Chrom {
			runs[len(runs)-1].hi = i + 1
			continue
		}
		if seen[rec.Chrom] {
			return fmt.Errorf("-split-chrom: chromosome %q is not contiguous in %s (reappears at variant %d)",
				rec.Chrom, bimPath, i)
		}
		seen[rec.Chrom] = true
		runs = append(runs, chromRun{chrom: rec.Chrom, lo: i, hi: i + 1})
	}
	if workers <= 0 {
		workers = min(4, runtime.GOMAXPROCS(0))
	}
	workers = min(workers, len(runs))
	ext := filepath.Ext(out)
	base := strings.TrimSuffix(out, ext)
	// Workers report through one line-atomic writer so concurrent
	// per-chromosome progress lines never interleave mid-line.
	sw := &syncWriter{w: stderr}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	errs := make([]error, len(runs))
	for ri, r := range runs {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			sub, err := bitmat.NewSliceSource(src, r.lo, r.hi)
			if err != nil {
				errs[ri] = fmt.Errorf("chromosome %s: %w", r.chrom, err)
				return
			}
			path := base + ".chr" + r.chrom + ext
			fmt.Fprintf(sw, "ldstore: chromosome %s: building %s (%d SNPs)\n", r.chrom, path, r.hi-r.lo)
			if err := build(path, sub, sw); err != nil {
				errs[ri] = fmt.Errorf("chromosome %s: %w", r.chrom, err)
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldstore: split %d SNPs into %d per-chromosome stores\n", src.NumSNPs(), len(runs))
	return nil
}

// syncWriter serializes whole Write calls onto the wrapped writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// runConvert turns a dataset into a .ldbm bit-matrix container. A .bed
// fileset is converted as a stream — one variant window resident at a
// time, so genome-scale inputs convert in O(window) memory; other formats
// load and rewrite.
func runConvert(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input path (.bed with companion .bim/.fam, or .ldgm/.ms; required)")
	out := fs.String("out", "", ".ldbm output path (required)")
	window := fs.Int("window", 0, "variants per streamed window for .bed input (0 = default 1024)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("-in and -out are required")
	}
	if filepath.Ext(*in) == ".bed" {
		prefix := strings.TrimSuffix(*in, ".bed")
		snps, err := countLines(prefix+".bim", func(r io.Reader) (int, error) {
			recs, err := seqio.ReadBim(r)
			return len(recs), err
		})
		if err != nil {
			return err
		}
		samples, err := countLines(prefix+".fam", func(r io.Reader) (int, error) {
			recs, err := seqio.ReadFam(r)
			return len(recs), err
		})
		if err != nil {
			return err
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := durableWrite(*out, func(tmp string) error {
			return seqio.BEDToLDBM(f, snps, samples, tmp, *window)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "ldstore: converted %s (%d variants × %d samples) to %s (%d haplotypes)\n",
			*in, snps, samples, *out, 2*samples)
		return nil
	}
	m, err := load(*in)
	if err != nil {
		return err
	}
	if err := durableWrite(*out, func(tmp string) error {
		return bitmat.WriteFile(tmp, m)
	}); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldstore: converted %s (%d×%d) to %s\n", *in, m.SNPs, m.Samples, *out)
	return nil
}

// Stubbable durability steps, so tests can assert that the converted
// container is fsynced before it takes its final name.
var (
	syncFile   = func(f *os.File) error { return f.Sync() }
	renameFile = os.Rename
)

// durableWrite runs write against a temp path next to out, fsyncs the
// result, and only then renames it into place, so a crash mid-convert
// can never leave a torn file under the final .ldbm name.
func durableWrite(out string, write func(tmp string) error) error {
	tmp := out + ".tmp"
	if err := write(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	f, err := os.OpenFile(tmp, os.O_RDWR, 0)
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncFile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := renameFile(tmp, out); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best effort: make the rename itself durable.
	if d, err := os.Open(filepath.Dir(out)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// countLines opens a companion metadata file and counts its records.
func countLines(path string, count func(io.Reader) (int, error)) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return count(f)
}

func runInfo(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("store", "", "tile store path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		fs.Usage()
		return fmt.Errorf("-store is required")
	}
	sparse, err := isSparseStore(*path)
	if err != nil {
		return err
	}
	if sparse {
		s, err := ldsparse.Open(*path, ldsparse.Options{})
		if err != nil {
			return err
		}
		defer s.Close()
		return writeJSON(stdout, s.Info())
	}
	s, err := ldstore.Open(*path, ldstore.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	return writeJSON(stdout, s.Info())
}

// isSparseStore sniffs the 4-byte container magic so info works on both
// dense (LDTS) and sparse (LDSS) stores without a flag.
func isSparseStore(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false, fmt.Errorf("%s: reading container magic: %w", path, err)
	}
	return m == [4]byte{'L', 'D', 'S', 'S'}, nil
}

func runQuery(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("store", "", "tile store path (required)")
	i := fs.Int("i", -1, "first SNP of a pair query")
	j := fs.Int("j", -1, "second SNP of a pair query")
	start := fs.Int("start", -1, "region start (inclusive)")
	end := fs.Int("end", -1, "region end (exclusive)")
	top := fs.Int("top", 0, "return the K strongest off-diagonal pairs")
	cache := fs.Int("cache", 0, "tile LRU capacity in tiles (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		fs.Usage()
		return fmt.Errorf("-store is required")
	}
	s, err := ldstore.Open(*path, ldstore.Options{CacheTiles: *cache})
	if err != nil {
		return err
	}
	defer s.Close()
	switch {
	case *i >= 0 || *j >= 0:
		v, err := s.At(*i, *j)
		if err != nil {
			return err
		}
		return writeJSON(stdout, map[string]any{
			"i": *i, "j": *j, "stat": s.Stat().String(), "value": v,
		})
	case *start >= 0 || *end >= 0:
		vals, err := s.Region(*start, *end)
		if err != nil {
			return err
		}
		w := *end - *start
		rows := make([][]float64, w)
		for r := range rows {
			rows[r] = vals[r*w : (r+1)*w]
		}
		return writeJSON(stdout, map[string]any{
			"start": *start, "end": *end, "stat": s.Stat().String(), "values": rows,
		})
	case *top > 0:
		pairs, err := s.Top(*top)
		if err != nil {
			return err
		}
		return writeJSON(stdout, map[string]any{
			"k": *top, "stat": s.Stat().String(), "pairs": pairs,
		})
	}
	fs.Usage()
	return fmt.Errorf("give a pair (-i/-j), a region (-start/-end), or -top K")
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// openSource opens a dataset as a bitmat.Source. A .ldbm container stays
// on disk — mmap'd or windowed-read — so the build is out of core; every
// other format loads into RAM exactly as before and is wrapped as a
// MemSource (the builder's in-RAM fast path).
func openSource(path string, mmap bool) (bitmat.Source, func(), error) {
	if filepath.Ext(path) == ".ldbm" {
		f, err := bitmat.OpenFile(path, mmap)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	}
	m, err := load(path)
	if err != nil {
		return nil, nil, err
	}
	return bitmat.NewMemSource(m), func() {}, nil
}

// load reads a dataset the same way ldserver does, so a store built here
// fingerprints identically to the matrix the server loads.
func load(path string) (*bitmat.Matrix, error) {
	r, closer, err := seqio.OpenMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	base := path
	for filepath.Ext(base) == ".gz" {
		base = base[:len(base)-3]
	}
	if filepath.Ext(base) == ".ms" {
		reps, err := seqio.ReadMS(r)
		if err != nil {
			return nil, err
		}
		return reps[0].Matrix, nil
	}
	return seqio.ReadBinary(r)
}
