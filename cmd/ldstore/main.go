// Command ldstore builds and inspects on-disk tile stores of precomputed
// LD statistics: run the blocked GEMM once, then serve any number of
// point, region, or top-K queries without touching the kernels again.
//
// Usage:
//
//	ldstore build -in data.ldgm -out data.ldts [-tile 256] [-stat r2] [-compress]
//	ldstore build -in data.ldbm -out data.ldts [-mmap] [-io-window 1024] [-checkpoint]
//	ldstore build -in data.ldbm -out data.ldts -resume
//	ldstore build -in data.ldbm -out data.ldts -split-chrom data.bim
//	ldstore convert -in data.bed -out data.ldbm [-window 1024]
//	ldstore info -store data.ldts
//	ldstore query -store data.ldts -i 3 -j 7
//	ldstore query -store data.ldts -start 100 -end 120
//	ldstore query -store data.ldts -top 25
//
// A .ldbm input is the out-of-core path: the bit matrix stays on disk
// (windowed reads, or -mmap) and the build streams double-buffered panel
// pairs through the GEMM, so genome-scale inputs never need to fit in
// memory. -checkpoint makes progress durable per stripe; -resume restarts
// a killed build where it left off, producing byte-identical output.
//
// The build output is the file ldserver's -store flag consumes. All query
// output is JSON on stdout.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/seqio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ldstore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ldstore build|info|query [flags] (-h for details)")
	}
	switch args[0] {
	case "build":
		return runBuild(args[1:], stdout, stderr)
	case "convert":
		return runConvert(args[1:], stdout, stderr)
	case "info":
		return runInfo(args[1:], stdout, stderr)
	case "query":
		return runQuery(args[1:], stdout, stderr)
	}
	return fmt.Errorf("unknown subcommand %q (want build, convert, info, or query)", args[0])
}

func runBuild(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dataset path (.ldbm for out-of-core, or .ldgm/.ms, optionally gzipped; required)")
	out := fs.String("out", "", "tile store output path (required)")
	tile := fs.Int("tile", 0, "tile side NT in SNPs (0 = default 256)")
	stat := fs.String("stat", "r2", "statistic to precompute: r2, d, or dprime")
	compress := fs.Bool("compress", false, "DEFLATE-compress each tile")
	threads := fs.Int("threads", 0, "kernel threads (0 = GOMAXPROCS)")
	mmap := fs.Bool("mmap", false, "memory-map a .ldbm input instead of windowed reads")
	ioWindow := fs.Int("io-window", 0, "out-of-core column-panel width in SNPs (0 = default 1024)")
	checkpoint := fs.Bool("checkpoint", false,
		"keep a durable per-stripe checkpoint (<out>.ckpt/.idx) so a killed build can -resume")
	resume := fs.Bool("resume", false, "resume a checkpointed build from where it left off (implies -checkpoint)")
	splitChrom := fs.String("split-chrom", "",
		"variant .bim path; build one store per chromosome, inserting .chr<N> before the output extension")
	tuneProfile := fs.String("tune-profile", "",
		"per-host tune profile JSON (ldbench -write-tune-profile output); corrupt or stale profiles are logged and ignored")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("-in and -out are required")
	}
	st, err := ldstore.ParseStat(*stat)
	if err != nil {
		return err
	}
	src, closeSrc, err := openSource(*in, *mmap)
	if err != nil {
		return err
	}
	defer closeSrc()
	// The build is one long batch of kernel calls, so a tuned kernel
	// config pays off most here; like ldserver, a bad profile is logged
	// and ignored — it must never block a build.
	bcfg := blis.Config{Threads: *threads}
	if *tuneProfile != "" {
		if p, err := blis.LoadProfile(*tuneProfile); err != nil {
			fmt.Fprintf(stderr, "ldstore: ignoring tune profile %s: %v\n", *tuneProfile, err)
		} else if cfg, err := p.Config(); err != nil {
			fmt.Fprintf(stderr, "ldstore: ignoring tune profile %s: %v\n", *tuneProfile, err)
		} else {
			if *threads != 0 {
				cfg.Threads = *threads
			}
			bcfg = cfg
			fmt.Fprintf(stderr, "ldstore: tune profile %s: kernel %s, popcount %s, MC/NC/KC %d/%d/%d\n",
				*tuneProfile, p.Kernel, p.Popcount, p.MC, p.NC, p.KC)
		}
	}
	opt := ldstore.SourceBuildOptions{
		BuildOptions: ldstore.BuildOptions{
			TileSize: *tile, Stat: st, Compress: *compress,
			LD: core.Options{Blis: bcfg},
		},
		IOPanelSNPs: *ioWindow,
		Checkpoint:  *checkpoint,
		Resume:      *resume,
	}
	if *splitChrom != "" {
		if *resume || *checkpoint {
			// Each per-chromosome store checkpoints independently; the flags
			// still apply, they just bind to the per-chromosome paths.
			fmt.Fprintf(stderr, "ldstore: checkpoints apply per chromosome store\n")
		}
		return buildSplit(*out, src, opt, *splitChrom, stderr)
	}
	return buildOne(*out, src, opt, stderr)
}

// buildOne runs a single out-of-core (or delegated in-RAM) build and
// reports the result; a PartialError gains a resume hint when the build
// was checkpointing.
func buildOne(out string, src bitmat.Source, opt ldstore.SourceBuildOptions, stderr io.Writer) error {
	res, err := ldstore.BuildFileFromSource(out, src, opt)
	if err != nil {
		var pe *ldstore.PartialError
		if errors.As(err, &pe) && (opt.Checkpoint || opt.Resume) {
			fmt.Fprintf(stderr, "ldstore: %d/%d stripes durable in %s; re-run with -resume to continue\n",
				pe.FlushedStripes, pe.TotalStripes, out)
		}
		return err
	}
	resumed := ""
	if res.StartStripe > 0 {
		resumed = fmt.Sprintf(", resumed at stripe %d", res.StartStripe)
	}
	fmt.Fprintf(stderr, "ldstore: wrote %s: %d tiles, %d bytes (%s, %d×%d, peak result memory %d bytes%s)\n",
		out, res.Tiles, res.FileBytes, opt.Stat, src.NumSNPs(), src.NumSamples(), res.PeakResultBytes, resumed)
	return nil
}

// buildSplit builds one store per chromosome of a .bim variant file whose
// records align row-for-row with the input. Each chromosome must be one
// contiguous block, as in a sorted fileset; the per-chromosome stores are
// byte-identical to whole-matrix builds of those row ranges.
func buildSplit(out string, src bitmat.Source, opt ldstore.SourceBuildOptions, bimPath string, stderr io.Writer) error {
	f, err := os.Open(bimPath)
	if err != nil {
		return err
	}
	bim, err := seqio.ReadBim(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(bim) != src.NumSNPs() {
		return fmt.Errorf("-split-chrom %s has %d variants, input has %d SNPs", bimPath, len(bim), src.NumSNPs())
	}
	type chromRun struct {
		chrom  string
		lo, hi int
	}
	var runs []chromRun
	seen := map[string]bool{}
	for i, rec := range bim {
		if len(runs) > 0 && runs[len(runs)-1].chrom == rec.Chrom {
			runs[len(runs)-1].hi = i + 1
			continue
		}
		if seen[rec.Chrom] {
			return fmt.Errorf("-split-chrom: chromosome %q is not contiguous in %s (reappears at variant %d)",
				rec.Chrom, bimPath, i)
		}
		seen[rec.Chrom] = true
		runs = append(runs, chromRun{chrom: rec.Chrom, lo: i, hi: i + 1})
	}
	ext := filepath.Ext(out)
	base := strings.TrimSuffix(out, ext)
	for _, r := range runs {
		sub, err := bitmat.NewSliceSource(src, r.lo, r.hi)
		if err != nil {
			return err
		}
		path := base + ".chr" + r.chrom + ext
		if err := buildOne(path, sub, opt, stderr); err != nil {
			return fmt.Errorf("chromosome %s: %w", r.chrom, err)
		}
	}
	fmt.Fprintf(stderr, "ldstore: split %d SNPs into %d per-chromosome stores\n", src.NumSNPs(), len(runs))
	return nil
}

// runConvert turns a dataset into a .ldbm bit-matrix container. A .bed
// fileset is converted as a stream — one variant window resident at a
// time, so genome-scale inputs convert in O(window) memory; other formats
// load and rewrite.
func runConvert(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input path (.bed with companion .bim/.fam, or .ldgm/.ms; required)")
	out := fs.String("out", "", ".ldbm output path (required)")
	window := fs.Int("window", 0, "variants per streamed window for .bed input (0 = default 1024)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("-in and -out are required")
	}
	if filepath.Ext(*in) == ".bed" {
		prefix := strings.TrimSuffix(*in, ".bed")
		snps, err := countLines(prefix+".bim", func(r io.Reader) (int, error) {
			recs, err := seqio.ReadBim(r)
			return len(recs), err
		})
		if err != nil {
			return err
		}
		samples, err := countLines(prefix+".fam", func(r io.Reader) (int, error) {
			recs, err := seqio.ReadFam(r)
			return len(recs), err
		})
		if err != nil {
			return err
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := seqio.BEDToLDBM(f, snps, samples, *out, *window); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "ldstore: converted %s (%d variants × %d samples) to %s (%d haplotypes)\n",
			*in, snps, samples, *out, 2*samples)
		return nil
	}
	m, err := load(*in)
	if err != nil {
		return err
	}
	if err := bitmat.WriteFile(*out, m); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldstore: converted %s (%d×%d) to %s\n", *in, m.SNPs, m.Samples, *out)
	return nil
}

// countLines opens a companion metadata file and counts its records.
func countLines(path string, count func(io.Reader) (int, error)) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return count(f)
}

func runInfo(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("store", "", "tile store path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		fs.Usage()
		return fmt.Errorf("-store is required")
	}
	s, err := ldstore.Open(*path, ldstore.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	return writeJSON(stdout, s.Info())
}

func runQuery(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("store", "", "tile store path (required)")
	i := fs.Int("i", -1, "first SNP of a pair query")
	j := fs.Int("j", -1, "second SNP of a pair query")
	start := fs.Int("start", -1, "region start (inclusive)")
	end := fs.Int("end", -1, "region end (exclusive)")
	top := fs.Int("top", 0, "return the K strongest off-diagonal pairs")
	cache := fs.Int("cache", 0, "tile LRU capacity in tiles (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		fs.Usage()
		return fmt.Errorf("-store is required")
	}
	s, err := ldstore.Open(*path, ldstore.Options{CacheTiles: *cache})
	if err != nil {
		return err
	}
	defer s.Close()
	switch {
	case *i >= 0 || *j >= 0:
		v, err := s.At(*i, *j)
		if err != nil {
			return err
		}
		return writeJSON(stdout, map[string]any{
			"i": *i, "j": *j, "stat": s.Stat().String(), "value": v,
		})
	case *start >= 0 || *end >= 0:
		vals, err := s.Region(*start, *end)
		if err != nil {
			return err
		}
		w := *end - *start
		rows := make([][]float64, w)
		for r := range rows {
			rows[r] = vals[r*w : (r+1)*w]
		}
		return writeJSON(stdout, map[string]any{
			"start": *start, "end": *end, "stat": s.Stat().String(), "values": rows,
		})
	case *top > 0:
		pairs, err := s.Top(*top)
		if err != nil {
			return err
		}
		return writeJSON(stdout, map[string]any{
			"k": *top, "stat": s.Stat().String(), "pairs": pairs,
		})
	}
	fs.Usage()
	return fmt.Errorf("give a pair (-i/-j), a region (-start/-end), or -top K")
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// openSource opens a dataset as a bitmat.Source. A .ldbm container stays
// on disk — mmap'd or windowed-read — so the build is out of core; every
// other format loads into RAM exactly as before and is wrapped as a
// MemSource (the builder's in-RAM fast path).
func openSource(path string, mmap bool) (bitmat.Source, func(), error) {
	if filepath.Ext(path) == ".ldbm" {
		f, err := bitmat.OpenFile(path, mmap)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	}
	m, err := load(path)
	if err != nil {
		return nil, nil, err
	}
	return bitmat.NewMemSource(m), func() {}, nil
}

// load reads a dataset the same way ldserver does, so a store built here
// fingerprints identically to the matrix the server loads.
func load(path string) (*bitmat.Matrix, error) {
	r, closer, err := seqio.OpenMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	base := path
	for filepath.Ext(base) == ".gz" {
		base = base[:len(base)-3]
	}
	if filepath.Ext(base) == ".ms" {
		reps, err := seqio.ReadMS(r)
		if err != nil {
			return nil, err
		}
		return reps[0].Matrix, nil
	}
	return seqio.ReadBinary(r)
}
