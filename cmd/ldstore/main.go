// Command ldstore builds and inspects on-disk tile stores of precomputed
// LD statistics: run the blocked GEMM once, then serve any number of
// point, region, or top-K queries without touching the kernels again.
//
// Usage:
//
//	ldstore build -in data.ldgm -out data.ldts [-tile 256] [-stat r2] [-compress]
//	ldstore info -store data.ldts
//	ldstore query -store data.ldts -i 3 -j 7
//	ldstore query -store data.ldts -start 100 -end 120
//	ldstore query -store data.ldts -top 25
//
// The build output is the file ldserver's -store flag consumes. All query
// output is JSON on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/seqio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ldstore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ldstore build|info|query [flags] (-h for details)")
	}
	switch args[0] {
	case "build":
		return runBuild(args[1:], stdout, stderr)
	case "info":
		return runInfo(args[1:], stdout, stderr)
	case "query":
		return runQuery(args[1:], stdout, stderr)
	}
	return fmt.Errorf("unknown subcommand %q (want build, info, or query)", args[0])
}

func runBuild(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dataset path (.ldgm or .ms, optionally gzipped; required)")
	out := fs.String("out", "", "tile store output path (required)")
	tile := fs.Int("tile", 0, "tile side NT in SNPs (0 = default 256)")
	stat := fs.String("stat", "r2", "statistic to precompute: r2, d, or dprime")
	compress := fs.Bool("compress", false, "DEFLATE-compress each tile")
	threads := fs.Int("threads", 0, "kernel threads (0 = GOMAXPROCS)")
	tuneProfile := fs.String("tune-profile", "",
		"per-host tune profile JSON (ldbench -write-tune-profile output); corrupt or stale profiles are logged and ignored")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("-in and -out are required")
	}
	st, err := ldstore.ParseStat(*stat)
	if err != nil {
		return err
	}
	g, err := load(*in)
	if err != nil {
		return err
	}
	// The build is one long batch of kernel calls, so a tuned kernel
	// config pays off most here; like ldserver, a bad profile is logged
	// and ignored — it must never block a build.
	bcfg := blis.Config{Threads: *threads}
	if *tuneProfile != "" {
		if p, err := blis.LoadProfile(*tuneProfile); err != nil {
			fmt.Fprintf(stderr, "ldstore: ignoring tune profile %s: %v\n", *tuneProfile, err)
		} else if cfg, err := p.Config(); err != nil {
			fmt.Fprintf(stderr, "ldstore: ignoring tune profile %s: %v\n", *tuneProfile, err)
		} else {
			if *threads != 0 {
				cfg.Threads = *threads
			}
			bcfg = cfg
			fmt.Fprintf(stderr, "ldstore: tune profile %s: kernel %s, popcount %s, MC/NC/KC %d/%d/%d\n",
				*tuneProfile, p.Kernel, p.Popcount, p.MC, p.NC, p.KC)
		}
	}
	res, err := ldstore.BuildFile(*out, g, ldstore.BuildOptions{
		TileSize: *tile, Stat: st, Compress: *compress,
		LD: core.Options{Blis: bcfg},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldstore: wrote %s: %d tiles, %d bytes (%s, %d×%d, peak result memory %d bytes)\n",
		*out, res.Tiles, res.FileBytes, st, g.SNPs, g.Samples, res.PeakResultBytes)
	return nil
}

func runInfo(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("store", "", "tile store path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		fs.Usage()
		return fmt.Errorf("-store is required")
	}
	s, err := ldstore.Open(*path, ldstore.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	return writeJSON(stdout, s.Info())
}

func runQuery(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldstore query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("store", "", "tile store path (required)")
	i := fs.Int("i", -1, "first SNP of a pair query")
	j := fs.Int("j", -1, "second SNP of a pair query")
	start := fs.Int("start", -1, "region start (inclusive)")
	end := fs.Int("end", -1, "region end (exclusive)")
	top := fs.Int("top", 0, "return the K strongest off-diagonal pairs")
	cache := fs.Int("cache", 0, "tile LRU capacity in tiles (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		fs.Usage()
		return fmt.Errorf("-store is required")
	}
	s, err := ldstore.Open(*path, ldstore.Options{CacheTiles: *cache})
	if err != nil {
		return err
	}
	defer s.Close()
	switch {
	case *i >= 0 || *j >= 0:
		v, err := s.At(*i, *j)
		if err != nil {
			return err
		}
		return writeJSON(stdout, map[string]any{
			"i": *i, "j": *j, "stat": s.Stat().String(), "value": v,
		})
	case *start >= 0 || *end >= 0:
		vals, err := s.Region(*start, *end)
		if err != nil {
			return err
		}
		w := *end - *start
		rows := make([][]float64, w)
		for r := range rows {
			rows[r] = vals[r*w : (r+1)*w]
		}
		return writeJSON(stdout, map[string]any{
			"start": *start, "end": *end, "stat": s.Stat().String(), "values": rows,
		})
	case *top > 0:
		pairs, err := s.Top(*top)
		if err != nil {
			return err
		}
		return writeJSON(stdout, map[string]any{
			"k": *top, "stat": s.Stat().String(), "pairs": pairs,
		})
	}
	fs.Usage()
	return fmt.Errorf("give a pair (-i/-j), a region (-start/-end), or -top K")
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// load reads a dataset the same way ldserver does, so a store built here
// fingerprints identically to the matrix the server loads.
func load(path string) (*bitmat.Matrix, error) {
	r, closer, err := seqio.OpenMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	base := path
	for filepath.Ext(base) == ".gz" {
		base = base[:len(base)-3]
	}
	if filepath.Ext(base) == ".ms" {
		reps, err := seqio.ReadMS(r)
		if err != nil {
			return nil, err
		}
		return reps[0].Matrix, nil
	}
	return seqio.ReadBinary(r)
}
