package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/ldsparse"
	"ldgemm/internal/popsim"
	"ldgemm/internal/seqio"
)

func runLdstore(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func writeDataset(t *testing.T) string {
	t.Helper()
	m, err := popsim.Mosaic(40, 32, popsim.MosaicConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.ldgm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := seqio.WriteBinary(f, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildInfoQuery(t *testing.T) {
	data := writeDataset(t)
	store := filepath.Join(t.TempDir(), "d.ldts")

	_, stderr, err := runLdstore(t, "build", "-in", data, "-out", store, "-tile", "16", "-compress")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if !strings.Contains(stderr, "wrote "+store) {
		t.Fatalf("build stderr %q", stderr)
	}

	stdout, _, err := runLdstore(t, "info", "-store", store)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	var info struct {
		SNPs       int    `json:"snps"`
		Stat       string `json:"stat"`
		Tiles      int    `json:"tiles"`
		Compressed bool   `json:"compressed"`
	}
	if err := json.Unmarshal([]byte(stdout), &info); err != nil {
		t.Fatalf("info output %q: %v", stdout, err)
	}
	if info.SNPs != 40 || info.Stat != "r2" || info.Tiles != 6 || !info.Compressed {
		t.Fatalf("info %+v", info)
	}

	stdout, _, err = runLdstore(t, "query", "-store", store, "-i", "3", "-j", "17")
	if err != nil {
		t.Fatalf("pair query: %v", err)
	}
	var pair struct {
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(stdout), &pair); err != nil {
		t.Fatal(err)
	}
	if pair.Value < 0 || pair.Value > 1 {
		t.Fatalf("r2 %v outside [0,1]", pair.Value)
	}

	stdout, _, err = runLdstore(t, "query", "-store", store, "-start", "5", "-end", "9")
	if err != nil {
		t.Fatalf("region query: %v", err)
	}
	var region struct {
		Values [][]float64 `json:"values"`
	}
	if err := json.Unmarshal([]byte(stdout), &region); err != nil {
		t.Fatal(err)
	}
	if len(region.Values) != 4 || len(region.Values[0]) != 4 {
		t.Fatalf("region shape %d", len(region.Values))
	}

	stdout, _, err = runLdstore(t, "query", "-store", store, "-top", "5")
	if err != nil {
		t.Fatalf("top query: %v", err)
	}
	var top struct {
		Pairs []struct {
			I     int     `json:"i"`
			J     int     `json:"j"`
			Value float64 `json:"value"`
		} `json:"pairs"`
	}
	if err := json.Unmarshal([]byte(stdout), &top); err != nil {
		t.Fatal(err)
	}
	if len(top.Pairs) != 5 {
		t.Fatalf("top returned %d pairs", len(top.Pairs))
	}
	for i := 1; i < len(top.Pairs); i++ {
		if top.Pairs[i].Value > top.Pairs[i-1].Value {
			t.Fatal("top pairs not sorted")
		}
	}
}

// TestBuildTuneProfile covers both sides of the -tune-profile contract
// on the build path: a valid profile steers the build (and is announced),
// a corrupt one is logged and ignored without failing the build.
func TestBuildTuneProfile(t *testing.T) {
	data := writeDataset(t)
	dir := t.TempDir()

	prof := filepath.Join(dir, "tune.json")
	err := blis.SaveProfile(prof, blis.Profile{
		Kernel: "4x4", Popcount: "scalar", MC: 64, NC: 1024, KC: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stderr, err := runLdstore(t, "build", "-in", data,
		"-out", filepath.Join(dir, "tuned.ldts"), "-tune-profile", prof)
	if err != nil {
		t.Fatalf("build with profile: %v", err)
	}
	if !strings.Contains(stderr, "tune profile") || strings.Contains(stderr, "ignoring") {
		t.Fatalf("profile load not announced: %q", stderr)
	}

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, err = runLdstore(t, "build", "-in", data,
		"-out", filepath.Join(dir, "fallback.ldts"), "-tune-profile", corrupt)
	if err != nil {
		t.Fatalf("build with corrupt profile failed: %v", err)
	}
	if !strings.Contains(stderr, "ignoring tune profile") {
		t.Fatalf("fallback not logged: %q", stderr)
	}
}

// TestBuildFromLDBM: builds from an on-disk .ldbm container — windowed,
// mmap'd, and checkpointed — are byte-identical to the in-RAM build of
// the same dataset.
func TestBuildFromLDBM(t *testing.T) {
	dir := t.TempDir()
	m, err := popsim.Mosaic(48, 40, popsim.MosaicConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ldgm := filepath.Join(dir, "d.ldgm")
	f, err := os.Create(ldgm)
	if err != nil {
		t.Fatal(err)
	}
	if err := seqio.WriteBinary(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ldbm := filepath.Join(dir, "d.ldbm")
	if err := bitmat.WriteFile(ldbm, m); err != nil {
		t.Fatal(err)
	}

	ref := filepath.Join(dir, "ref.ldts")
	if _, _, err := runLdstore(t, "build", "-in", ldgm, "-out", ref, "-tile", "16"); err != nil {
		t.Fatalf("reference build: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	for name, extra := range map[string][]string{
		"windowed":   {"-io-window", "8"},
		"mmap":       {"-mmap"},
		"checkpoint": {"-checkpoint"},
	} {
		out := filepath.Join(dir, name+".ldts")
		args := append([]string{"build", "-in", ldbm, "-out", out, "-tile", "16"}, extra...)
		if _, _, err := runLdstore(t, args...); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s build differs from in-RAM build", name)
		}
	}
	// -resume with no prior checkpoint starts fresh and still matches.
	out := filepath.Join(dir, "resume.ldts")
	if _, _, err := runLdstore(t, "build", "-in", ldbm, "-out", out, "-tile", "16", "-resume"); err != nil {
		t.Fatalf("resume-fresh build: %v", err)
	}
	if got, _ := os.ReadFile(out); !bytes.Equal(got, want) {
		t.Fatal("resume-fresh build differs from in-RAM build")
	}
}

// TestBuildSplitChrom: a two-chromosome .bim splits the build into two
// stores, each byte-identical to a whole build of that row range.
func TestBuildSplitChrom(t *testing.T) {
	dir := t.TempDir()
	m, err := popsim.Mosaic(40, 32, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ldbm := filepath.Join(dir, "d.ldbm")
	if err := bitmat.WriteFile(ldbm, m); err != nil {
		t.Fatal(err)
	}
	bim := make([]seqio.BimRecord, m.SNPs)
	for i := range bim {
		chrom := "1"
		if i >= 24 {
			chrom = "2"
		}
		bim[i] = seqio.BimRecord{Chrom: chrom, ID: "v", Pos: 1 + i, Allele1: 'G', Allele2: 'A'}
	}
	bimPath := filepath.Join(dir, "d.bim")
	bf, err := os.Create(bimPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := seqio.WriteBim(bf, bim); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	out := filepath.Join(dir, "d.ldts")
	_, stderr, err := runLdstore(t, "build", "-in", ldbm, "-out", out, "-tile", "16", "-split-chrom", bimPath)
	if err != nil {
		t.Fatalf("split build: %v", err)
	}
	if !strings.Contains(stderr, "2 per-chromosome stores") {
		t.Fatalf("split not announced: %q", stderr)
	}
	for _, r := range []struct {
		chrom  string
		lo, hi int
	}{{"1", 0, 24}, {"2", 24, 40}} {
		sub := m.Slice(r.lo, r.hi)
		subLdgm := filepath.Join(dir, "sub"+r.chrom+".ldgm")
		f, err := os.Create(subLdgm)
		if err != nil {
			t.Fatal(err)
		}
		if err := seqio.WriteBinary(f, sub); err != nil {
			t.Fatal(err)
		}
		f.Close()
		ref := filepath.Join(dir, "ref"+r.chrom+".ldts")
		if _, _, err := runLdstore(t, "build", "-in", subLdgm, "-out", ref, "-tile", "16"); err != nil {
			t.Fatal(err)
		}
		want, _ := os.ReadFile(ref)
		got, err := os.ReadFile(filepath.Join(dir, "d.chr"+r.chrom+".ldts"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chr%s store differs from whole-matrix build of rows [%d,%d)", r.chrom, r.lo, r.hi)
		}
	}

	// Non-contiguous chromosome blocks must be refused.
	bim[10].Chrom = "2"
	bf, err = os.Create(bimPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := seqio.WriteBim(bf, bim); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	if _, _, err := runLdstore(t, "build", "-in", ldbm, "-out", out, "-split-chrom", bimPath); err == nil {
		t.Fatal("interleaved chromosomes accepted")
	}
}

// TestConvert: .bed filesets stream into .ldbm containers that match the
// in-RAM pseudo-phase path; .ldgm inputs rewrite directly.
func TestConvert(t *testing.T) {
	dir := t.TempDir()
	m, err := popsim.Mosaic(30, 24, popsim.MosaicConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	geno, err := bitmat.FromHaplotypes(m)
	if err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(dir, "d")
	err = seqio.WritePlinkFileset(prefix, geno,
		seqio.DefaultBim(m.SNPs, "1", 100), seqio.DefaultFam(geno.Samples))
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "d.ldbm")
	_, stderr, err := runLdstore(t, "convert", "-in", prefix+".bed", "-out", out, "-window", "7")
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	if !strings.Contains(stderr, "converted") {
		t.Fatalf("convert stderr %q", stderr)
	}
	f, err := bitmat.OpenFile(out, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Load()
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := geno.PseudoPhase()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("converted container differs from whole-matrix PseudoPhase")
	}

	ldgm := writeDataset(t)
	out2 := filepath.Join(dir, "g.ldbm")
	if _, _, err := runLdstore(t, "convert", "-in", ldgm, "-out", out2); err != nil {
		t.Fatalf("ldgm convert: %v", err)
	}
	if _, _, err := runLdstore(t, "convert", "-in", ldgm); err == nil {
		t.Fatal("convert without -out accepted")
	}
	if _, _, err := runLdstore(t, "convert", "-in", filepath.Join(dir, "missing.bed"), "-out", out2); err == nil {
		t.Fatal("convert of missing fileset accepted")
	}
}

func TestCLIErrors(t *testing.T) {
	if _, _, err := runLdstore(t); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if _, _, err := runLdstore(t, "frobnicate"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if _, _, err := runLdstore(t, "build"); err == nil {
		t.Fatal("build without flags accepted")
	}
	if _, _, err := runLdstore(t, "info"); err == nil {
		t.Fatal("info without -store accepted")
	}
	if _, _, err := runLdstore(t, "query", "-store", filepath.Join(t.TempDir(), "missing.ldts"), "-top", "3"); err == nil {
		t.Fatal("query on missing store accepted")
	}
	data := writeDataset(t)
	if _, _, err := runLdstore(t, "build", "-in", data,
		"-out", filepath.Join(t.TempDir(), "x.ldts"), "-stat", "nope"); err == nil {
		t.Fatal("bad stat accepted")
	}
	store := filepath.Join(t.TempDir(), "q.ldts")
	if _, _, err := runLdstore(t, "build", "-in", data, "-out", store); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runLdstore(t, "query", "-store", store); err == nil {
		t.Fatal("query without a selector accepted")
	}
	if _, _, err := runLdstore(t, "query", "-store", store, "-i", "0", "-j", "400"); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
}

// TestBuildSparse: the -sparse path writes an LDSS container
// byte-identical to a direct ldsparse build, info sniffs the magic, and
// the sparse-only flags are validated.
func TestBuildSparse(t *testing.T) {
	dir := t.TempDir()
	m, err := popsim.Mosaic(48, 40, popsim.MosaicConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ldbm := filepath.Join(dir, "d.ldbm")
	if err := bitmat.WriteFile(ldbm, m); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "d.ldss")
	_, stderr, err := runLdstore(t, "build", "-in", ldbm, "-out", out,
		"-sparse", "-tile", "16", "-threshold", "0.1", "-band", "20")
	if err != nil {
		t.Fatalf("sparse build: %v", err)
	}
	if !strings.Contains(stderr, "sparse r2") || !strings.Contains(stderr, "band 20") {
		t.Fatalf("sparse build stderr %q", stderr)
	}
	ref := filepath.Join(dir, "ref.ldss")
	if _, err := ldsparse.BuildFile(ref, m, ldsparse.BuildOptions{
		TileSize: 16, Threshold: 0.1, Banded: true, Band: 20,
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(out)
	want, _ := os.ReadFile(ref)
	if !bytes.Equal(got, want) {
		t.Fatal("CLI sparse build differs from direct ldsparse build")
	}

	stdout, _, err := runLdstore(t, "info", "-store", out)
	if err != nil {
		t.Fatalf("sparse info: %v", err)
	}
	var info struct {
		SNPs      int     `json:"snps"`
		Threshold float64 `json:"threshold"`
		Banded    bool    `json:"banded"`
		Band      int     `json:"band"`
		NNZ       int64   `json:"nnz"`
	}
	if err := json.Unmarshal([]byte(stdout), &info); err != nil {
		t.Fatalf("info output %q: %v", stdout, err)
	}
	if info.SNPs != 48 || info.Threshold != 0.1 || !info.Banded || info.Band != 20 {
		t.Fatalf("sparse info %+v", info)
	}

	// Sparse-only flags are rejected without -sparse; -compress is
	// rejected with it.
	if _, _, err := runLdstore(t, "build", "-in", ldbm, "-out", out, "-threshold", "0.1"); err == nil {
		t.Fatal("-threshold without -sparse accepted")
	}
	if _, _, err := runLdstore(t, "build", "-in", ldbm, "-out", out, "-band", "5"); err == nil {
		t.Fatal("-band without -sparse accepted")
	}
	if _, _, err := runLdstore(t, "build", "-in", ldbm, "-out", out, "-sparse", "-compress"); err == nil {
		t.Fatal("-sparse -compress accepted")
	}
}

// TestBuildSplitChromParallel: a parallel split build produces files
// byte-identical to a sequential (-split-workers 1) run and logs
// per-chromosome progress.
func TestBuildSplitChromParallel(t *testing.T) {
	dir := t.TempDir()
	m, err := popsim.Mosaic(60, 32, popsim.MosaicConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ldbm := filepath.Join(dir, "d.ldbm")
	if err := bitmat.WriteFile(ldbm, m); err != nil {
		t.Fatal(err)
	}
	chroms := []string{"1", "2", "3", "4"}
	bim := make([]seqio.BimRecord, m.SNPs)
	for i := range bim {
		bim[i] = seqio.BimRecord{Chrom: chroms[i/15], ID: "v", Pos: 1 + i, Allele1: 'G', Allele2: 'A'}
	}
	bimPath := filepath.Join(dir, "d.bim")
	bf, err := os.Create(bimPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := seqio.WriteBim(bf, bim); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	seqDir, parDir := filepath.Join(dir, "seq"), filepath.Join(dir, "par")
	for _, d := range []string{seqDir, parDir} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := runLdstore(t, "build", "-in", ldbm, "-out", filepath.Join(seqDir, "d.ldts"),
		"-tile", "16", "-split-chrom", bimPath, "-split-workers", "1"); err != nil {
		t.Fatalf("sequential split: %v", err)
	}
	_, stderr, err := runLdstore(t, "build", "-in", ldbm, "-out", filepath.Join(parDir, "d.ldts"),
		"-tile", "16", "-split-chrom", bimPath, "-split-workers", "3")
	if err != nil {
		t.Fatalf("parallel split: %v", err)
	}
	if !strings.Contains(stderr, "4 per-chromosome stores") {
		t.Fatalf("split summary missing: %q", stderr)
	}
	for _, c := range chroms {
		if !strings.Contains(stderr, "chromosome "+c+": building") {
			t.Fatalf("chromosome %s progress missing: %q", c, stderr)
		}
		want, err := os.ReadFile(filepath.Join(seqDir, "d.chr"+c+".ldts"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(parDir, "d.chr"+c+".ldts"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chr%s parallel store differs from sequential", c)
		}
	}

	// Sparse split builds ride the same pool.
	if _, _, err := runLdstore(t, "build", "-in", ldbm, "-out", filepath.Join(parDir, "d.ldss"),
		"-sparse", "-tile", "16", "-threshold", "0.2", "-split-chrom", bimPath, "-split-workers", "2"); err != nil {
		t.Fatalf("sparse split: %v", err)
	}
	for _, c := range chroms {
		if _, err := os.Stat(filepath.Join(parDir, "d.chr"+c+".ldss")); err != nil {
			t.Fatalf("sparse chr%s store missing: %v", c, err)
		}
	}
}

// TestConvertDurability: convert fsyncs the temp file before renaming it
// into place, so a crash can never leave a torn file under the final
// name.
func TestConvertDurability(t *testing.T) {
	origSync, origRename := syncFile, renameFile
	defer func() { syncFile, renameFile = origSync, origRename }()
	var events []string
	syncFile = func(f *os.File) error {
		events = append(events, "sync "+filepath.Base(f.Name()))
		return origSync(f)
	}
	renameFile = func(from, to string) error {
		events = append(events, "rename "+filepath.Base(from)+" -> "+filepath.Base(to))
		return origRename(from, to)
	}

	dir := t.TempDir()
	out := filepath.Join(dir, "g.ldbm")
	if _, _, err := runLdstore(t, "convert", "-in", writeDataset(t), "-out", out); err != nil {
		t.Fatalf("convert: %v", err)
	}
	want := []string{"sync g.ldbm.tmp", "rename g.ldbm.tmp -> g.ldbm"}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("durability events %q, want %q", events, want)
	}
	if _, err := os.Stat(out + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived: %v", err)
	}
	if f, err := bitmat.OpenFile(out, false); err != nil {
		t.Fatalf("converted container unreadable: %v", err)
	} else {
		f.Close()
	}

	// A failed rename must remove the temp file and fail the convert.
	renameFile = func(from, to string) error { return os.ErrPermission }
	out2 := filepath.Join(dir, "h.ldbm")
	if _, _, err := runLdstore(t, "convert", "-in", writeDataset(t), "-out", out2); err == nil {
		t.Fatal("convert with failing rename succeeded")
	}
	if _, err := os.Stat(out2 + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived failed rename: %v", err)
	}
}
