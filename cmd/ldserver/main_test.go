package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"ldgemm/internal/popsim"
	"ldgemm/internal/seqio"
)

func writeServerDataset(t *testing.T, gz bool) string {
	t.Helper()
	m, err := popsim.Mosaic(50, 40, popsim.MosaicConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	name := "d.ldgm"
	if gz {
		name += ".gz"
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if gz {
		zw := gzip.NewWriter(f)
		if err := seqio.WriteBinary(zw, m); err != nil {
			t.Fatal(err)
		}
		zw.Close()
	} else if err := seqio.WriteBinary(f, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSetupServesInfo(t *testing.T) {
	for _, gz := range []bool{false, true} {
		path := writeServerDataset(t, gz)
		var errBuf bytes.Buffer
		handler, addr, err := setup([]string{"-in", path, "-addr", ":9999"}, &errBuf)
		if err != nil {
			t.Fatal(err)
		}
		if addr != ":9999" {
			t.Fatalf("addr %q", addr)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/info", nil))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
		var info struct {
			SNPs    int `json:"snps"`
			Samples int `json:"samples"`
		}
		if err := json.NewDecoder(rec.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		if info.SNPs != 50 || info.Samples != 40 {
			t.Fatalf("gz=%v: info %+v", gz, info)
		}
	}
}

func TestSetupErrors(t *testing.T) {
	var errBuf bytes.Buffer
	if _, _, err := setup(nil, &errBuf); err == nil {
		t.Fatal("missing -in accepted")
	}
	if _, _, err := setup([]string{"-in", "/nonexistent"}, &errBuf); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, _, err := setup([]string{"-bogus"}, &errBuf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
