package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"strings"

	"ldgemm/internal/blis"
	"ldgemm/internal/ldsparse"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/popsim"
	"ldgemm/internal/seqio"
)

func writeServerDataset(t *testing.T, gz bool) string {
	t.Helper()
	m, err := popsim.Mosaic(50, 40, popsim.MosaicConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	name := "d.ldgm"
	if gz {
		name += ".gz"
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if gz {
		zw := gzip.NewWriter(f)
		if err := seqio.WriteBinary(zw, m); err != nil {
			t.Fatal(err)
		}
		zw.Close()
	} else if err := seqio.WriteBinary(f, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSetupServesInfo(t *testing.T) {
	for _, gz := range []bool{false, true} {
		path := writeServerDataset(t, gz)
		var errBuf bytes.Buffer
		a, err := setup([]string{"-in", path, "-addr", ":9999", "-access-log=false"}, &errBuf)
		if err != nil {
			t.Fatal(err)
		}
		if a.srv.Addr != ":9999" {
			t.Fatalf("addr %q", a.srv.Addr)
		}
		if a.admin != nil {
			t.Fatal("admin server configured without -admin")
		}
		if a.srv.ReadHeaderTimeout == 0 || a.srv.WriteTimeout == 0 {
			t.Fatalf("edge timeouts not set: %+v", a.srv)
		}
		rec := httptest.NewRecorder()
		a.srv.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/info", nil))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
		var info struct {
			SNPs    int `json:"snps"`
			Samples int `json:"samples"`
		}
		if err := json.NewDecoder(rec.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		if info.SNPs != 50 || info.Samples != 40 {
			t.Fatalf("gz=%v: info %+v", gz, info)
		}
	}
}

func TestSetupErrors(t *testing.T) {
	var errBuf bytes.Buffer
	if _, err := setup(nil, &errBuf); err == nil {
		t.Fatal("missing -in accepted")
	}
	if _, err := setup([]string{"-in", "/nonexistent"}, &errBuf); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := setup([]string{"-bogus"}, &errBuf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestSetupAdminSurface checks that -admin builds a second server carrying
// pprof and the metric tree, isolated from the client mux.
func TestSetupAdminSurface(t *testing.T) {
	path := writeServerDataset(t, false)
	var errBuf bytes.Buffer
	a, err := setup([]string{
		"-in", path, "-addr", ":9999", "-admin", "127.0.0.1:0", "-access-log=false",
	}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if a.admin == nil {
		t.Fatal("-admin did not configure an admin server")
	}
	for _, p := range []string{"/debug/vars", "/debug/pprof/cmdline"} {
		rec := httptest.NewRecorder()
		a.admin.Handler.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
		if rec.Code != 200 {
			t.Fatalf("admin %s status %d", p, rec.Code)
		}
	}
	// The heavy pprof index must NOT leak onto the client-facing mux.
	rec := httptest.NewRecorder()
	a.srv.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code == 200 {
		t.Fatal("pprof exposed on the client listener")
	}
}

// TestRunGracefulShutdown boots the real servers on ephemeral ports and
// checks that cancelling the run context drains them promptly.
func TestRunGracefulShutdown(t *testing.T) {
	path := writeServerDataset(t, false)
	var errBuf bytes.Buffer
	a, err := setup([]string{
		"-in", path, "-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0",
		"-grace", "2s", "-access-log=false",
	}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()
	time.Sleep(50 * time.Millisecond) // let the listeners bind
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
}

func TestSetupWithStore(t *testing.T) {
	path := writeServerDataset(t, false)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := seqio.ReadBinary(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(t.TempDir(), "d.ldts")
	if _, err := ldstore.BuildFile(storePath, g, ldstore.BuildOptions{TileSize: 16}); err != nil {
		t.Fatal(err)
	}

	var errBuf bytes.Buffer
	a, err := setup([]string{"-in", path, "-store", storePath, "-access-log=false"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if a.store == nil {
		t.Fatal("store not retained for shutdown close")
	}
	rec := httptest.NewRecorder()
	a.srv.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/info", nil))
	var info struct {
		StoreLoaded bool   `json:"store_loaded"`
		StoreStat   string `json:"store_stat"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.StoreLoaded || info.StoreStat != "r2" {
		t.Fatalf("info %+v", info)
	}
	a.store.Close()
}

func TestSetupRejectsMismatchedStore(t *testing.T) {
	path := writeServerDataset(t, false)
	other, err := popsim.Mosaic(50, 40, popsim.MosaicConfig{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(t.TempDir(), "other.ldts")
	if _, err := ldstore.BuildFile(storePath, other, ldstore.BuildOptions{TileSize: 16}); err != nil {
		t.Fatal(err)
	}
	var errBuf bytes.Buffer
	if _, err := setup([]string{"-in", path, "-store", storePath, "-access-log=false"}, &errBuf); err == nil {
		t.Fatal("mismatched store accepted at startup")
	}
}

// TestSetupTuneProfile closes the autotune loop: a saved profile is
// loaded at startup, steers the kernel config, and the dispatched
// variant surfaces on /debug/vars after a kernel-powered request.
func TestSetupTuneProfile(t *testing.T) {
	path := writeServerDataset(t, false)
	profPath := filepath.Join(t.TempDir(), "tune.json")
	err := blis.SaveProfile(profPath, blis.Profile{
		Kernel: "4x4", Popcount: "scalar", MC: 64, NC: 1024, KC: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	var errBuf bytes.Buffer
	a, err := setup([]string{"-in", path, "-tune-profile", profPath, "-access-log=false"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "tune profile") || strings.Contains(errBuf.String(), "ignoring") {
		t.Fatalf("profile load not announced: %s", errBuf.String())
	}
	rec := httptest.NewRecorder()
	a.srv.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/ld/region?start=0&end=20", nil))
	if rec.Code != 200 {
		t.Fatalf("region status %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	a.srv.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var vars struct {
		Blis struct {
			Variant  string `json:"kernel_variant"`
			Popcount string `json:"popcount_strategy"`
		} `json:"blis"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Blis.Variant != "4x4" || vars.Blis.Popcount != "scalar" {
		t.Fatalf("/debug/vars reports variant %q popcount %q, want 4x4/scalar",
			vars.Blis.Variant, vars.Blis.Popcount)
	}
}

// TestSetupTuneProfileFallback pins the failure contract: a corrupt or
// stale profile is logged and ignored — startup must still succeed.
func TestSetupTuneProfileFallback(t *testing.T) {
	path := writeServerDataset(t, false)
	dir := t.TempDir()

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "stale.json")
	err := blis.SaveProfile(stale, blis.Profile{
		Fingerprint: "linux/riscv64/cpu64/simd-none/v1",
		Kernel:      "4x4", Popcount: "vector", MC: 128, NC: 4096, KC: 256,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, prof := range []string{corrupt, stale} {
		var errBuf bytes.Buffer
		if _, err := setup([]string{"-in", path, "-tune-profile", prof, "-access-log=false"}, &errBuf); err != nil {
			t.Fatalf("bad profile %s failed startup: %v", prof, err)
		}
		if !strings.Contains(errBuf.String(), "ignoring tune profile") {
			t.Fatalf("fallback for %s not logged: %s", prof, errBuf.String())
		}
	}
}

// TestSetupShardMode boots a shard via -shard-range and checks both the
// advertised range and ownership enforcement.
func TestSetupShardMode(t *testing.T) {
	path := writeServerDataset(t, false)
	var errBuf bytes.Buffer
	a, err := setup([]string{"-in", path, "-shard-range", "10:30", "-access-log=false"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	a.srv.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/info", nil))
	var info struct {
		Shard *struct {
			Start int `json:"start"`
			End   int `json:"end"`
		} `json:"shard"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Shard == nil || info.Shard.Start != 10 || info.Shard.End != 30 {
		t.Fatalf("shard info %+v", info.Shard)
	}
	rec = httptest.NewRecorder()
	a.srv.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/ld?i=40&j=45", nil))
	if rec.Code != 421 {
		t.Fatalf("misrouted pair status %d, want 421", rec.Code)
	}

	for _, bad := range []string{"30", "a:b", "-5:10", "10:10", "0:51"} {
		if _, err := setup([]string{"-in", path, "-shard-range", bad, "-access-log=false"}, &errBuf); err == nil {
			t.Fatalf("-shard-range %q accepted", bad)
		}
	}
}

// TestSetupCoordinatorMode boots two real shard servers and a coordinator
// in front of them through the flag surface.
func TestSetupCoordinatorMode(t *testing.T) {
	path := writeServerDataset(t, false)
	var errBuf bytes.Buffer
	shards := make([]string, 2)
	for i, rng := range []string{"0:25", "25:50"} {
		a, err := setup([]string{"-in", path, "-shard-range", rng, "-access-log=false"}, &errBuf)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(a.srv.Handler)
		t.Cleanup(ts.Close)
		shards[i] = ts.URL
	}

	a, err := setup([]string{
		"-coordinator", shards[0] + "," + shards[1],
		"-admin", "127.0.0.1:0", "-retries", "1", "-hedge-after", "-1ms",
	}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if a.coord == nil {
		t.Fatal("coordinator not retained for shutdown close")
	}
	rec := httptest.NewRecorder()
	a.srv.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/ld?i=5&j=40", nil))
	if rec.Code != 200 {
		t.Fatalf("coordinator pair status %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	a.admin.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("coordinator admin vars status %d", rec.Code)
	}
	a.coord.Close()

	// Replica syntax: a second replica of strip 0 joins via `|`, and the
	// coordinator routes around the dead one transparently.
	rep, err := setup([]string{"-in", path, "-shard-range", "0:25", "-access-log=false"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	repTS := httptest.NewServer(rep.srv.Handler)
	a, err = setup([]string{
		"-coordinator", shards[0] + "|" + repTS.URL + "," + shards[1],
		"-retries", "1", "-hedge-after", "-1ms", "-result-cache", "0",
	}, &errBuf)
	if err != nil {
		t.Fatalf("replica coordinator failed to boot: %v", err)
	}
	repTS.Close() // strip 0 still has shards[0]
	rec = httptest.NewRecorder()
	a.srv.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/ld?i=5&j=40", nil))
	if rec.Code != 200 {
		t.Fatalf("replica-group pair status %d: %s", rec.Code, rec.Body)
	}
	a.coord.Close()

	// Mutually exclusive and invalid configurations refuse to start.
	if _, err := setup([]string{"-coordinator", shards[0], "-in", path}, &errBuf); err == nil {
		t.Fatal("-coordinator with -in accepted")
	}
	if _, err := setup([]string{"-coordinator", shards[0], "-shard-range", "0:10"}, &errBuf); err == nil {
		t.Fatal("-coordinator with -shard-range accepted")
	}
	if _, err := setup([]string{"-coordinator", shards[0]}, &errBuf); err == nil {
		t.Fatal("coordinator over half a partition accepted")
	}
}

// TestSetupWithSparseStore: -sparse-store brings the operator endpoints
// up for the matching dataset, and a mismatched sparse store is refused
// loudly at startup.
func TestSetupWithSparseStore(t *testing.T) {
	path := writeServerDataset(t, false)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := seqio.ReadBinary(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sparsePath := filepath.Join(t.TempDir(), "d.ldss")
	if _, err := ldsparse.BuildFile(sparsePath, g, ldsparse.BuildOptions{TileSize: 16, Threshold: 0.05}); err != nil {
		t.Fatal(err)
	}

	var errBuf bytes.Buffer
	a, err := setup([]string{"-in", path, "-sparse-store", sparsePath, "-access-log=false"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if a.sparse == nil {
		t.Fatal("sparse store not retained for shutdown close")
	}
	if !strings.Contains(errBuf.String(), "sparse store "+sparsePath) {
		t.Fatalf("sparse store load not announced: %q", errBuf.String())
	}
	x := make([]float64, g.SNPs)
	body, _ := json.Marshal(map[string][]float64{"x": x})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/api/sparse/matvec", bytes.NewReader(body))
	a.srv.Handler.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("sparse matvec status %d: %s", rec.Code, rec.Body)
	}
	a.sparse.Close()

	// A sparse store for a different dataset refuses to start.
	other, err := popsim.Mosaic(50, 40, popsim.MosaicConfig{Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	otherPath := filepath.Join(t.TempDir(), "other.ldss")
	if _, err := ldsparse.BuildFile(otherPath, other, ldsparse.BuildOptions{TileSize: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := setup([]string{"-in", path, "-sparse-store", otherPath, "-access-log=false"}, &errBuf); err == nil {
		t.Fatal("mismatched sparse store accepted at startup")
	} else if !strings.Contains(err.Error(), "different dataset") {
		t.Fatalf("mismatch error %v", err)
	}
}
