// Command ldserver serves LD queries over a loaded genomic dataset: the
// backend a GWAS browser or analysis notebook would hit instead of
// recomputing LD locally.
//
// Usage:
//
//	ldserver -in data.ldgm -addr :8080
//
// With -store pointing at an `ldstore build` output for the same dataset,
// the /api/ld, /api/ld/region, and /api/ld/top endpoints serve precomputed
// tiles through an LRU cache instead of running the kernels per request;
// a store built from a different dataset is rejected at startup by its
// fingerprint.
//
// Endpoints (all GET, JSON):
//
//	/api/info                         dataset dimensions and summary
//	/api/freq?i=N                     allele frequency of SNP N
//	/api/ld?i=N&j=M                   full pair statistics + significance
//	/api/ld/region?start=A&end=B      dense matrix (&measure=r2|d|dprime)
//	/api/ld/top?k=K                   strongest associations
//	/api/prune?window=&step=&r2=      LD pruning
//	/api/blocks?dprime=&frac=         haplotype blocks
//	/api/omega?grid=&min_each=&max_each=   selective-sweep scan
//	/debug/vars                       ops metrics (expvar JSON)
//
// Request lifecycle: every request runs under -request-timeout (the
// kernel drivers observe the deadline through context cancellation and
// abort mid-computation), at most -max-inflight heavy requests compute
// concurrently (excess requests are shed with 503 + Retry-After), and
// SIGINT/SIGTERM drain in-flight requests for up to -grace before the
// process exits. With -admin set, net/http/pprof and a second /debug/vars
// are served on a separate listener that is never exposed to clients.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/seqio"
	"ldgemm/internal/server"
)

func main() {
	app, err := setup(os.Args[1:], os.Stderr)
	if err != nil {
		log.Fatalf("ldserver: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := app.run(ctx); err != nil && err != http.ErrServerClosed {
		log.Fatalf("ldserver: %v", err)
	}
}

// app is a configured ldserver: the main API server plus the optional
// admin (pprof/metrics) server, ready to run until a signal drains it.
type app struct {
	srv   *http.Server
	admin *http.Server   // nil unless -admin was given
	store *ldstore.Store // nil unless -store was given; closed after drain
	grace time.Duration
}

// setup parses flags, loads the dataset, and returns the ready app;
// separated from main so tests can drive the full configuration path
// without binding a socket.
func setup(args []string, stderr io.Writer) (*app, error) {
	fs := flag.NewFlagSet("ldserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dataset path (.ldgm or .ms, optionally gzipped; required)")
	addr := fs.String("addr", ":8080", "listen address")
	maxRegion := fs.Int("max-region", 512, "cap on dense region width")
	threads := fs.Int("threads", 0, "LD kernel threads (0 = GOMAXPROCS)")
	chunk := fs.Int("chunk", 0, "parallel-driver chunk granularity in micro-tiles (0 = derived)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second,
		"per-request deadline; in-flight kernels are cancelled when it expires (0 = none)")
	maxInFlight := fs.Int("max-inflight", 0,
		"cap on concurrently-computing heavy requests; excess get 503 (0 = unlimited)")
	adminAddr := fs.String("admin", "",
		"admin listen address for /debug/pprof and /debug/vars (empty = disabled)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain window after SIGINT/SIGTERM")
	accessLog := fs.Bool("access-log", true, "emit one structured (JSON) log line per request")
	storePath := fs.String("store", "",
		"precomputed tile store (ldstore build output) backing the LD endpoints (empty = compute on the fly)")
	storeCache := fs.Int("store-cache", 0, "tile-store LRU capacity in tiles (0 = default)")
	epilogue := fs.String("epilogue", "fused",
		"LD epilogue mode: fused (convert counts per tile inside the blocked driver) or split (legacy two-phase)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *in == "" {
		fs.Usage()
		return nil, fmt.Errorf("-in is required")
	}
	emode, err := parseEpilogue(*epilogue)
	if err != nil {
		return nil, err
	}
	g, err := load(*in)
	if err != nil {
		return nil, err
	}
	cfg := server.Config{
		MaxRegionSNPs: *maxRegion, Threads: *threads, ChunkTiles: *chunk,
		RequestTimeout: *reqTimeout, MaxInFlight: *maxInFlight,
		Epilogue: emode,
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	var st *ldstore.Store
	if *storePath != "" {
		st, err = ldstore.Open(*storePath, ldstore.Options{CacheTiles: *storeCache})
		if err != nil {
			return nil, err
		}
		// A stale store silently serving wrong statistics would be worse
		// than no store: refuse to start rather than quietly fall back.
		if fp := ldstore.Fingerprint(g); st.Fingerprint() != fp {
			st.Close()
			return nil, fmt.Errorf("store %s was built for a different dataset (fingerprint %016x, dataset %016x)",
				*storePath, st.Fingerprint(), fp)
		}
		cfg.Store = st
		fmt.Fprintf(stderr, "ldserver: tile store %s: %d tiles of %s, %d×%d\n",
			*storePath, st.Info().Tiles, st.Stat(), st.SNPs(), st.Samples())
	}
	s := server.New(g, cfg)
	fmt.Fprintf(stderr, "ldserver: loaded %d SNPs × %d sequences; listening on %s\n",
		g.SNPs, g.Samples, *addr)

	a := &app{grace: *grace, store: st, srv: newHTTPServer(*addr, s, *reqTimeout)}
	if *adminAddr != "" {
		a.admin = newHTTPServer(*adminAddr, adminMux(s), 0)
	}
	return a, nil
}

// newHTTPServer wraps a handler in an http.Server with conservative edge
// parseEpilogue maps the -epilogue flag to the core mode.
func parseEpilogue(s string) (core.EpilogueMode, error) {
	switch s {
	case "fused", "":
		return core.EpilogueAuto, nil
	case "split":
		return core.EpilogueSplit, nil
	}
	return 0, fmt.Errorf("-epilogue must be \"fused\" or \"split\", got %q", s)
}

// timeouts: ReadHeaderTimeout defeats slowloris handshakes, and the write
// timeout leaves room past the per-request deadline so timeout responses
// are still delivered instead of the connection being cut mid-body.
func newHTTPServer(addr string, h http.Handler, reqTimeout time.Duration) *http.Server {
	write := 5 * time.Minute
	if reqTimeout > 0 {
		write = reqTimeout + 30*time.Second
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      write,
		IdleTimeout:       2 * time.Minute,
	}
}

// adminMux serves the operator-only surface: pprof profiles and the
// metric tree, on a listener separate from client traffic.
func adminMux(s *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /debug/vars", s.VarsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// run serves until the context is cancelled (SIGINT/SIGTERM), then drains
// in-flight requests for up to the grace window.
func (a *app) run(ctx context.Context) error {
	errc := make(chan error, 2)
	go func() { errc <- a.srv.ListenAndServe() }()
	if a.admin != nil {
		go func() { errc <- a.admin.ListenAndServe() }()
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), a.grace)
	defer cancel()
	if a.admin != nil {
		a.admin.Shutdown(sctx)
	}
	err := a.srv.Shutdown(sctx)
	if a.store != nil {
		a.store.Close()
	}
	return err
}

func load(path string) (*bitmat.Matrix, error) {
	r, closer, err := seqio.OpenMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	base := path
	for filepath.Ext(base) == ".gz" {
		base = base[:len(base)-3]
	}
	if filepath.Ext(base) == ".ms" {
		reps, err := seqio.ReadMS(r)
		if err != nil {
			return nil, err
		}
		return reps[0].Matrix, nil
	}
	return seqio.ReadBinary(r)
}
