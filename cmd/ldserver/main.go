// Command ldserver serves LD queries over a loaded genomic dataset: the
// backend a GWAS browser or analysis notebook would hit instead of
// recomputing LD locally.
//
// Usage:
//
//	ldserver -in data.ldgm -addr :8080
//
// With -tune-profile pointing at an `ldbench -write-tune-profile` output,
// the saved kernel configuration (micro-kernel shape, popcount strategy,
// cache blocking) steers every LD request; a profile that is corrupt or
// was measured on different hardware is logged and ignored, never fatal.
//
// With -store pointing at an `ldstore build` output for the same dataset,
// the /api/ld, /api/ld/region, and /api/ld/top endpoints serve precomputed
// tiles through an LRU cache instead of running the kernels per request;
// a store built from a different dataset is rejected at startup by its
// fingerprint. With -sparse-store pointing at an `ldstore build -sparse`
// output (LDSS), the POST /api/sparse/matvec and /api/sparse/score
// operator endpoints come up too, under the same fingerprint check.
//
// Endpoints (GET unless noted, JSON):
//
//	/api/info                         dataset dimensions and summary
//	/api/freq?i=N                     allele frequency of SNP N
//	/api/ld?i=N&j=M                   full pair statistics + significance
//	/api/ld/region?start=A&end=B      dense matrix (&measure=r2|d|dprime)
//	/api/ld/top?k=K                   strongest associations
//	/api/prune?window=&step=&r2=      LD pruning
//	/api/blocks?dprime=&frac=         haplotype blocks
//	/api/omega?grid=&min_each=&max_each=   selective-sweep scan
//	/api/sparse/matvec                POST {"x": [...]}: sparse R·v
//	/api/sparse/score                 POST {"z": [...]}: Σ stat·z² scores
//	/debug/vars                       ops metrics (expvar JSON)
//
// Request lifecycle: every request runs under -request-timeout (the
// kernel drivers observe the deadline through context cancellation and
// abort mid-computation), at most -max-inflight heavy requests compute
// concurrently (excess requests are shed with 503 + Retry-After), and
// SIGINT/SIGTERM drain in-flight requests for up to -grace before the
// process exits. With -admin set, net/http/pprof and a second /debug/vars
// are served on a separate listener that is never exposed to clients.
//
// Cluster modes: `-shard-range a:b` runs this server as a cluster shard
// owning SNP rows [a, b) — it answers only queries whose smaller index
// falls in its strip (421 otherwise) and advertises the range on
// /api/info. `-coordinator urlA|urlB,urlC` runs a coordinator instead
// of a server: no dataset is loaded; comma-separated groups own the
// strips, and `|`-separated URLs within a group are interchangeable
// replicas of the same strip (identical shard ranges and dataset
// fingerprints, validated at bootstrap). Pair lookups route to the
// healthiest replica of the owning group and region/top queries
// scatter-gather across the strips, failing over within each group
// before degrading; -shard-timeout, -retries, -retry-backoff,
// -hedge-after, -breaker-failures, and -breaker-cooldown tune the
// resilient shard client, and -result-cache bounds the fingerprint-keyed
// result cache. All replicas must be reachable when the coordinator
// boots.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/cluster"
	"ldgemm/internal/core"
	"ldgemm/internal/ldsparse"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/seqio"
	"ldgemm/internal/server"
)

func main() {
	app, err := setup(os.Args[1:], os.Stderr)
	if err != nil {
		log.Fatalf("ldserver: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := app.run(ctx); err != nil && err != http.ErrServerClosed {
		log.Fatalf("ldserver: %v", err)
	}
}

// app is a configured ldserver: the main API server plus the optional
// admin (pprof/metrics) server, ready to run until a signal drains it.
type app struct {
	srv    *http.Server
	admin  *http.Server         // nil unless -admin was given
	store  *ldstore.Store       // nil unless -store was given; closed after drain
	sparse *ldsparse.Store      // nil unless -sparse-store was given; closed after drain
	coord  *cluster.Coordinator // nil unless -coordinator was given
	grace  time.Duration
}

// setup parses flags, loads the dataset, and returns the ready app;
// separated from main so tests can drive the full configuration path
// without binding a socket.
func setup(args []string, stderr io.Writer) (*app, error) {
	fs := flag.NewFlagSet("ldserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dataset path (.ldgm or .ms, optionally gzipped; required)")
	addr := fs.String("addr", ":8080", "listen address")
	maxRegion := fs.Int("max-region", 512, "cap on dense region width")
	threads := fs.Int("threads", 0, "LD kernel threads (0 = GOMAXPROCS)")
	chunk := fs.Int("chunk", 0, "parallel-driver chunk granularity in micro-tiles (0 = derived)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second,
		"per-request deadline; in-flight kernels are cancelled when it expires (0 = none)")
	maxInFlight := fs.Int("max-inflight", 0,
		"cap on concurrently-computing heavy requests; excess get 503 (0 = unlimited)")
	adminAddr := fs.String("admin", "",
		"admin listen address for /debug/pprof and /debug/vars (empty = disabled)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain window after SIGINT/SIGTERM")
	accessLog := fs.Bool("access-log", true, "emit one structured (JSON) log line per request")
	storePath := fs.String("store", "",
		"precomputed tile store (ldstore build output) backing the LD endpoints (empty = compute on the fly)")
	storeCache := fs.Int("store-cache", 0, "tile-store LRU capacity in tiles (0 = default)")
	sparsePath := fs.String("sparse-store", "",
		"threshold-pruned sparse store (ldstore build -sparse output) backing the /api/sparse operator endpoints")
	sparseCache := fs.Int("sparse-cache", 0, "sparse-store LRU capacity in tiles (0 = default)")
	tuneProfile := fs.String("tune-profile", "",
		"per-host tune profile JSON (ldbench -write-tune-profile output); corrupt or stale profiles are logged and ignored")
	epilogue := fs.String("epilogue", "fused",
		"LD epilogue mode: fused (convert counts per tile inside the blocked driver) or split (legacy two-phase)")
	shardRange := fs.String("shard-range", "",
		"owned SNP row range a:b when running as a cluster shard (empty = unsharded)")
	coordinator := fs.String("coordinator", "",
		"comma-separated shard groups (replicas |-separated within a group); run as a cluster coordinator instead of serving a dataset")
	shardTimeout := fs.Duration("shard-timeout", 30*time.Second,
		"coordinator: per-attempt deadline for each shard call")
	retries := fs.Int("retries", 2, "coordinator: re-attempts after a failed shard call (0 = none)")
	retryBackoff := fs.Duration("retry-backoff", 25*time.Millisecond,
		"coordinator: sleep before the first retry, doubling up to 1s")
	hedgeAfter := fs.Duration("hedge-after", 0,
		"coordinator: hedge a slow shard call after this delay (0 = adaptive p95, negative = disabled)")
	breakerFailures := fs.Int("breaker-failures", 5,
		"coordinator: consecutive shard failures that open its circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second,
		"coordinator: how long an open breaker fails fast before probing the shard again")
	resultCache := fs.Int64("result-cache", 64<<20,
		"coordinator: byte budget for the fingerprint-keyed result cache (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *coordinator != "" {
		if *in != "" || *storePath != "" || *sparsePath != "" || *shardRange != "" {
			return nil, fmt.Errorf("-coordinator is mutually exclusive with -in, -store, -sparse-store, and -shard-range")
		}
		ccfg := cluster.Config{
			ShardTimeout: *shardTimeout, Retries: *retries, RetryBackoff: *retryBackoff,
			HedgeAfter: *hedgeAfter, BreakerFailures: *breakerFailures, BreakerCooldown: *breakerCooldown,
			ResultCacheBytes: *resultCache,
		}
		if *retries == 0 {
			ccfg.Retries = -1 // the flag's 0 means "no retries", not "default"
		}
		if *resultCache == 0 {
			ccfg.ResultCacheBytes = -1 // likewise: 0 at the CLI disables the cache
		}
		co, err := cluster.New(context.Background(), strings.Split(*coordinator, ","), ccfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "ldserver: coordinating %d shard groups; listening on %s\n",
			len(strings.Split(*coordinator, ",")), *addr)
		a := &app{grace: *grace, coord: co, srv: newHTTPServer(*addr, co, *reqTimeout)}
		if *adminAddr != "" {
			a.admin = newHTTPServer(*adminAddr, adminMux(co.VarsHandler()), 0)
		}
		return a, nil
	}
	if *in == "" {
		fs.Usage()
		return nil, fmt.Errorf("-in is required")
	}
	emode, err := parseEpilogue(*epilogue)
	if err != nil {
		return nil, err
	}
	g, err := load(*in)
	if err != nil {
		return nil, err
	}
	cfg := server.Config{
		MaxRegionSNPs: *maxRegion, Threads: *threads, ChunkTiles: *chunk,
		RequestTimeout: *reqTimeout, MaxInFlight: *maxInFlight,
		Epilogue: emode,
	}
	if *tuneProfile != "" {
		cfg.Blis = loadTuneProfile(*tuneProfile, stderr)
	}
	if *shardRange != "" {
		lo, hi, err := parseShardRange(*shardRange, g.SNPs)
		if err != nil {
			return nil, err
		}
		cfg.ShardStart, cfg.ShardEnd = lo, hi
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	var st *ldstore.Store
	if *storePath != "" {
		st, err = ldstore.Open(*storePath, ldstore.Options{CacheTiles: *storeCache})
		if err != nil {
			return nil, err
		}
		// A stale store silently serving wrong statistics would be worse
		// than no store: refuse to start rather than quietly fall back.
		if fp := ldstore.Fingerprint(g); st.Fingerprint() != fp {
			st.Close()
			return nil, fmt.Errorf("store %s was built for a different dataset (fingerprint %016x, dataset %016x)",
				*storePath, st.Fingerprint(), fp)
		}
		cfg.Store = st
		fmt.Fprintf(stderr, "ldserver: tile store %s: %d tiles of %s, %d×%d\n",
			*storePath, st.Info().Tiles, st.Stat(), st.SNPs(), st.Samples())
	}
	var sp *ldsparse.Store
	if *sparsePath != "" {
		sp, err = ldsparse.Open(*sparsePath, ldsparse.Options{CacheTiles: *sparseCache})
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, err
		}
		// Same contract as -store: a sparse store for the wrong dataset is
		// refused loudly rather than silently dropped.
		if fp := ldstore.Fingerprint(g); sp.Fingerprint() != fp {
			sp.Close()
			if st != nil {
				st.Close()
			}
			return nil, fmt.Errorf("sparse store %s was built for a different dataset (fingerprint %016x, dataset %016x)",
				*sparsePath, sp.Fingerprint(), fp)
		}
		cfg.Sparse = sp
		info := sp.Info()
		fmt.Fprintf(stderr, "ldserver: sparse store %s: %d entries of %s at threshold %g (density %.4f)\n",
			*sparsePath, info.NNZ, info.Stat, info.Threshold, info.Density)
	}
	s := server.New(g, cfg)
	fmt.Fprintf(stderr, "ldserver: loaded %d SNPs × %d sequences; listening on %s\n",
		g.SNPs, g.Samples, *addr)

	a := &app{grace: *grace, store: st, sparse: sp, srv: newHTTPServer(*addr, s, *reqTimeout)}
	if *adminAddr != "" {
		a.admin = newHTTPServer(*adminAddr, adminMux(s.VarsHandler()), 0)
	}
	return a, nil
}

// loadTuneProfile resolves the -tune-profile flag into a base kernel
// configuration. Any failure — corrupt JSON, an unknown kernel, or a
// fingerprint measured on another host — is logged and the defaults are
// kept: a bad profile must never stop the server, and a stale one must
// never steer it with foreign measurements.
func loadTuneProfile(path string, stderr io.Writer) blis.Config {
	p, err := blis.LoadProfile(path)
	if err != nil {
		fmt.Fprintf(stderr, "ldserver: ignoring tune profile %s: %v\n", path, err)
		return blis.Config{}
	}
	cfg, err := p.Config()
	if err != nil {
		fmt.Fprintf(stderr, "ldserver: ignoring tune profile %s: %v\n", path, err)
		return blis.Config{}
	}
	fmt.Fprintf(stderr, "ldserver: tune profile %s: kernel %s, popcount %s, MC/NC/KC %d/%d/%d\n",
		path, p.Kernel, p.Popcount, p.MC, p.NC, p.KC)
	return cfg
}

// parseShardRange parses the -shard-range a:b flag against the loaded
// dataset. A CLI typo should refuse to start, not silently clamp.
func parseShardRange(s string, snps int) (lo, hi int, err error) {
	a, b, found := strings.Cut(s, ":")
	if !found {
		return 0, 0, fmt.Errorf("-shard-range: want a:b, got %q", s)
	}
	if lo, err = strconv.Atoi(a); err != nil {
		return 0, 0, fmt.Errorf("-shard-range: %v", err)
	}
	if hi, err = strconv.Atoi(b); err != nil {
		return 0, 0, fmt.Errorf("-shard-range: %v", err)
	}
	if lo < 0 || hi <= lo || hi > snps {
		return 0, 0, fmt.Errorf("-shard-range [%d,%d) outside dataset rows 0..%d", lo, hi, snps)
	}
	return lo, hi, nil
}

// newHTTPServer wraps a handler in an http.Server with conservative edge
// parseEpilogue maps the -epilogue flag to the core mode.
func parseEpilogue(s string) (core.EpilogueMode, error) {
	switch s {
	case "fused", "":
		return core.EpilogueAuto, nil
	case "split":
		return core.EpilogueSplit, nil
	}
	return 0, fmt.Errorf("-epilogue must be \"fused\" or \"split\", got %q", s)
}

// timeouts: ReadHeaderTimeout defeats slowloris handshakes, and the write
// timeout leaves room past the per-request deadline so timeout responses
// are still delivered instead of the connection being cut mid-body.
func newHTTPServer(addr string, h http.Handler, reqTimeout time.Duration) *http.Server {
	write := 5 * time.Minute
	if reqTimeout > 0 {
		write = reqTimeout + 30*time.Second
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      write,
		IdleTimeout:       2 * time.Minute,
	}
}

// adminMux serves the operator-only surface: pprof profiles and the
// metric tree, on a listener separate from client traffic.
func adminMux(vars http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /debug/vars", vars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// run serves until the context is cancelled (SIGINT/SIGTERM), then drains
// in-flight requests for up to the grace window.
func (a *app) run(ctx context.Context) error {
	errc := make(chan error, 2)
	go func() { errc <- a.srv.ListenAndServe() }()
	if a.admin != nil {
		go func() { errc <- a.admin.ListenAndServe() }()
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), a.grace)
	defer cancel()
	if a.admin != nil {
		a.admin.Shutdown(sctx)
	}
	err := a.srv.Shutdown(sctx)
	if a.store != nil {
		a.store.Close()
	}
	if a.sparse != nil {
		a.sparse.Close()
	}
	if a.coord != nil {
		a.coord.Close()
	}
	return err
}

func load(path string) (*bitmat.Matrix, error) {
	r, closer, err := seqio.OpenMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	base := path
	for filepath.Ext(base) == ".gz" {
		base = base[:len(base)-3]
	}
	if filepath.Ext(base) == ".ms" {
		reps, err := seqio.ReadMS(r)
		if err != nil {
			return nil, err
		}
		return reps[0].Matrix, nil
	}
	return seqio.ReadBinary(r)
}
