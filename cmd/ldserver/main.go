// Command ldserver serves LD queries over a loaded genomic dataset: the
// backend a GWAS browser or analysis notebook would hit instead of
// recomputing LD locally.
//
// Usage:
//
//	ldserver -in data.ldgm -addr :8080
//
// Endpoints (all GET, JSON):
//
//	/api/info                         dataset dimensions and summary
//	/api/freq?i=N                     allele frequency of SNP N
//	/api/ld?i=N&j=M                   full pair statistics + significance
//	/api/ld/region?start=A&end=B      dense matrix (&measure=r2|d|dprime)
//	/api/ld/top?k=K                   strongest associations
//	/api/prune?window=&step=&r2=      LD pruning
//	/api/blocks?dprime=&frac=         haplotype blocks
//	/api/omega?grid=&min_each=&max_each=   selective-sweep scan
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/seqio"
	"ldgemm/internal/server"
)

func main() {
	handler, addr, err := setup(os.Args[1:], os.Stderr)
	if err != nil {
		log.Fatalf("ldserver: %v", err)
	}
	log.Fatal(http.ListenAndServe(addr, handler))
}

// setup parses flags, loads the dataset, and returns the ready handler;
// separated from main so tests can drive the full configuration path
// without binding a socket.
func setup(args []string, stderr io.Writer) (http.Handler, string, error) {
	fs := flag.NewFlagSet("ldserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dataset path (.ldgm or .ms, optionally gzipped; required)")
	addr := fs.String("addr", ":8080", "listen address")
	maxRegion := fs.Int("max-region", 512, "cap on dense region width")
	threads := fs.Int("threads", 0, "LD kernel threads (0 = GOMAXPROCS)")
	chunk := fs.Int("chunk", 0, "parallel-driver chunk granularity in micro-tiles (0 = derived)")
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}
	if *in == "" {
		fs.Usage()
		return nil, "", fmt.Errorf("-in is required")
	}
	g, err := load(*in)
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintf(stderr, "ldserver: loaded %d SNPs × %d sequences; listening on %s\n",
		g.SNPs, g.Samples, *addr)
	return server.New(g, server.Config{
		MaxRegionSNPs: *maxRegion, Threads: *threads, ChunkTiles: *chunk,
	}), *addr, nil
}

func load(path string) (*bitmat.Matrix, error) {
	r, closer, err := seqio.OpenMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	base := path
	for filepath.Ext(base) == ".gz" {
		base = base[:len(base)-3]
	}
	if filepath.Ext(base) == ".ms" {
		reps, err := seqio.ReadMS(r)
		if err != nil {
			return nil, err
		}
		return reps[0].Matrix, nil
	}
	return seqio.ReadBinary(r)
}
