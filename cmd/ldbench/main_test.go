package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldgemm/internal/blis"
)

func TestParseThreads(t *testing.T) {
	got, err := parseThreads("1,2, 12")
	if err != nil || len(got) != 3 || got[2] != 12 {
		t.Fatalf("parseThreads: %v %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "1,,y"} {
		if _, err := parseThreads(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestLdbenchUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-scale", "64", "nonsense"}, &out, &errBuf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestLdbenchNoExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(nil, &out, &errBuf); err == nil {
		t.Fatal("empty experiment list accepted")
	}
	if !strings.Contains(errBuf.String(), "usage: ldbench") {
		t.Fatal("usage not printed")
	}
}

func TestLdbenchJSONBenchmark(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ld.json")
	var out, errBuf bytes.Buffer
	// -json with no experiments is a pure benchmark run.
	if err := run([]string{"-scale", "64", "-threads", "1,2", "-json", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SNPs < 64 || rep.Samples < 128 || rep.Words < 1 {
		t.Fatalf("implausible shape %+v", rep)
	}
	if rep.ReferenceTriplesPerSec <= 0 {
		t.Fatalf("reference rate %v", rep.ReferenceTriplesPerSec)
	}
	if len(rep.Runs) != 2 || rep.Runs[0].Threads != 1 || rep.Runs[1].Threads != 2 {
		t.Fatalf("runs %+v", rep.Runs)
	}
	for _, r := range rep.Runs {
		if r.TriplesPerSec <= 0 || r.SpeedupVsReference <= 0 {
			t.Fatalf("implausible run %+v", r)
		}
	}
	// The kernel-dispatch section covers the k grid, with identity and
	// dispatch labels on every point.
	if len(rep.Kernel) != 4 {
		t.Fatalf("kernel points %+v", rep.Kernel)
	}
	for i, k := range []int{4, 16, 64, 256} {
		p := rep.Kernel[i]
		if p.KWords != k || p.Samples != k*64 {
			t.Fatalf("kernel point %d shape %+v", i, p)
		}
		if p.Variant == "" || p.Popcount == "" {
			t.Fatalf("kernel point %d missing dispatch labels: %+v", i, p)
		}
		if p.ScalarGcellsPerSec <= 0 || p.AutoGcellsPerSec <= 0 || p.Speedup <= 0 {
			t.Fatalf("kernel point %d rates %+v", i, p)
		}
	}
}

func TestLdbenchWriteTuneProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	var out, errBuf bytes.Buffer
	err := run([]string{"-write-tune-profile", path, "-tune-budget", "200ms"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "profile written to") {
		t.Fatalf("no tune summary: %s", errBuf.String())
	}
	p, err := blis.LoadProfile(path)
	if err != nil {
		t.Fatalf("written profile does not load back: %v", err)
	}
	if _, err := p.Config(); err != nil {
		t.Fatal(err)
	}
}

func TestLdbenchSIMDTable(t *testing.T) {
	// simd is deterministic and fast: a real end-to-end run.
	var out, errBuf bytes.Buffer
	if err := run([]string{"-scale", "64", "simd"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Section V", "scalar (Section IV kernel)", "hardware vector POPCNT"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in output", want)
		}
	}
	if !strings.Contains(errBuf.String(), "calibrating host peak") {
		t.Fatal("no calibration message")
	}
}

func TestLdbenchCSV(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-scale", "64", "-csv", "simd"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") || strings.Contains(first, "|") {
		t.Fatalf("not CSV: %q", first)
	}
}

func TestLdbenchTinyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run skipped in -short")
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-scale", "64", "-threads", "1", "-reps", "1", "table1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "GEMM vs PLINK") {
		t.Fatalf("missing comparison columns:\n%s", out.String())
	}
}

// TestLdbenchStoreJSON: the out-of-core store-build benchmark runs end to
// end at smoke scale and reports a coherent shape — panels actually read,
// a positive build rate, and the budget arithmetic wired through.
func TestLdbenchStoreJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_store.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-scale", "16", "-store-json", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep storeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SNPs < 512 || rep.Samples < 2048 || rep.Words < 1 {
		t.Fatalf("implausible shape %+v", rep)
	}
	if rep.MatrixBytes != int64(rep.SNPs)*int64(rep.Words)*8 {
		t.Fatalf("matrix bytes %d for %d×%d words", rep.MatrixBytes, rep.SNPs, rep.Words)
	}
	if rep.BudgetBytes != rep.MatrixBytes/2 {
		t.Fatalf("budget %d, matrix %d", rep.BudgetBytes, rep.MatrixBytes)
	}
	if rep.BuildSeconds <= 0 || rep.TriplesPerSec <= 0 || rep.PairsPerSec <= 0 {
		t.Fatalf("implausible rates %+v", rep)
	}
	if rep.Tiles < 1 || rep.FileBytes <= 0 {
		t.Fatalf("implausible store %+v", rep)
	}
	// Windowed reads mean the prefetcher must have fetched real panels.
	if rep.PanelsRead == 0 || rep.PanelBytesRead == 0 {
		t.Fatalf("no panel I/O recorded: %+v", rep)
	}
	if rep.AllocBytes == 0 {
		t.Fatal("no allocation recorded")
	}
}

func TestLdbenchSparseJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sparse.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-scale", "32", "-sparse-json", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep sparseReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SNPs < 512 || rep.Samples < 256 || rep.Words < 1 {
		t.Fatalf("implausible shape %+v", rep)
	}
	if !rep.MatVecExact {
		t.Fatal("matvec was not verified bit-identical")
	}
	if rep.RatiosEnforced {
		t.Fatalf("%d SNPs should not enforce the asymptotic ratios", rep.SNPs)
	}
	if rep.NNZ <= 0 || rep.SparseStoreBytes <= 0 || rep.DenseStoreBytes <= rep.SparseStoreBytes {
		t.Fatalf("implausible store sizes %+v", rep)
	}
	if rep.SizeRatio <= 1 || rep.BandSpeedup <= 0 || rep.MatVecsPerSec <= 0 {
		t.Fatalf("implausible rates %+v", rep)
	}
	if !strings.Contains(errBuf.String(), "size ratio") {
		t.Fatalf("missing summary line in stderr: %q", errBuf.String())
	}
}
