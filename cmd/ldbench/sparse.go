package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
	"ldgemm/internal/ldsparse"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/popsim"
)

// sparseEnforceSNPs is the matrix size above which the sparse benchmark's
// acceptance ratios are enforced: below it the stores are so small that
// fixed header/index overheads drown the asymptotic claims.
const sparseEnforceSNPs = 2048

// sparseReport is the BENCH_sparse.json schema: the sparse/banded tier's
// three claims on one dataset — a threshold-pruned LDSS store is a small
// fraction of the dense LDTS store, a near-diagonal band skips enough
// GEMM to cut build time, and the CSR matvec serves R·v at memory speed
// while matching the dense fold bit-for-bit on kept entries.
type sparseReport struct {
	SNPs      int     `json:"snps"`
	Samples   int     `json:"samples"`
	Words     int     `json:"words"`
	TileSize  int     `json:"tile_size"`
	Threshold float64 `json:"threshold"`
	Band      int     `json:"band"`

	// Build-time trajectory: the dense LDTS build, the full-matrix sparse
	// build at the threshold, and the banded sparse build at Band.
	DenseBuildSeconds  float64 `json:"dense_build_seconds"`
	SparseBuildSeconds float64 `json:"sparse_build_seconds"`
	BandedBuildSeconds float64 `json:"banded_build_seconds"`
	// BandSpeedup is full-matrix sparse build time over banded build time:
	// the payoff of skipping far-off-diagonal tile pairs entirely.
	BandSpeedup float64 `json:"band_speedup"`

	// Store sizes: the dense store, the pruned store, and their ratio.
	DenseStoreBytes  int64   `json:"dense_store_bytes"`
	SparseStoreBytes int64   `json:"sparse_store_bytes"`
	SizeRatio        float64 `json:"size_ratio"`
	NNZ              int64   `json:"nnz"`
	Density          float64 `json:"density"`

	// Matvec throughput over the pruned store, and the bit-identity
	// verdict against a dense ascending-j fold over the kept entries
	// (always asserted; the benchmark fails on any mismatch).
	MatVecReps          int     `json:"matvec_reps"`
	MatVecSeconds       float64 `json:"matvec_seconds"`
	MatVecsPerSec       float64 `json:"matvecs_per_sec"`
	EntriesPerSec       float64 `json:"entries_per_sec"`
	MatVecExact         bool    `json:"matvec_exact"`
	RatiosEnforced      bool    `json:"ratios_enforced"`
	MinSizeRatio        float64 `json:"min_size_ratio"`
	MinBandSpeedup      float64 `json:"min_band_speedup"`
}

// writeSparseJSON builds one dataset three ways — dense LDTS, pruned
// LDSS, banded LDSS — measures sizes, build times, and matvec
// throughput, and writes the machine-readable report. Matvec
// correctness against the dense fold is always asserted; the ≥10× size
// and ≥2× banded-build ratios are enforced once the matrix is large
// enough for the asymptotics to dominate the container overheads.
func writeSparseJSON(path string, scale int, stderr io.Writer) error {
	snps := max(512, 16384/scale)
	samples := max(256, 8192/scale)
	const (
		tile      = 128
		threshold = 0.2
	)
	band := snps / 16

	g, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: 5})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "ldbench-sparse")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rep := sparseReport{
		SNPs: snps, Samples: samples, Words: g.Words,
		TileSize: tile, Threshold: threshold, Band: band,
		MinSizeRatio: 10, MinBandSpeedup: 2,
		RatiosEnforced: snps >= sparseEnforceSNPs,
	}

	densePath := filepath.Join(dir, "g.ldts")
	start := time.Now()
	dres, err := ldstore.BuildFile(densePath, g, ldstore.BuildOptions{TileSize: tile})
	if err != nil {
		return fmt.Errorf("sparse bench: dense build: %w", err)
	}
	rep.DenseBuildSeconds = time.Since(start).Seconds()
	rep.DenseStoreBytes = dres.FileBytes

	sparsePath := filepath.Join(dir, "g.ldss")
	start = time.Now()
	sres, err := ldsparse.BuildFile(sparsePath, g, ldsparse.BuildOptions{
		TileSize: tile, Threshold: threshold,
	})
	if err != nil {
		return fmt.Errorf("sparse bench: sparse build: %w", err)
	}
	rep.SparseBuildSeconds = time.Since(start).Seconds()
	rep.SparseStoreBytes = sres.FileBytes
	rep.NNZ = sres.NNZ
	rep.SizeRatio = float64(rep.DenseStoreBytes) / float64(rep.SparseStoreBytes)
	rep.Density = float64(sres.NNZ) / (float64(snps) * float64(snps+1) / 2)

	bandedPath := filepath.Join(dir, "g.banded.ldss")
	start = time.Now()
	if _, err := ldsparse.BuildFile(bandedPath, g, ldsparse.BuildOptions{
		TileSize: tile, Threshold: threshold, Banded: true, Band: band,
	}); err != nil {
		return fmt.Errorf("sparse bench: banded build: %w", err)
	}
	rep.BandedBuildSeconds = time.Since(start).Seconds()
	rep.BandSpeedup = rep.SparseBuildSeconds / rep.BandedBuildSeconds

	sp, err := ldsparse.Open(sparsePath, ldsparse.Options{})
	if err != nil {
		return fmt.Errorf("sparse bench: built store unreadable: %w", err)
	}
	defer sp.Close()

	x := make([]float64, snps)
	for i := range x {
		x[i] = math.Sin(float64(2*i+1)) + 0.5
	}
	got, err := sp.MatVec(x)
	if err != nil {
		return fmt.Errorf("sparse bench: matvec: %w", err)
	}
	want, err := denseFoldMatVec(g, x, threshold)
	if err != nil {
		return err
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("sparse bench: matvec y[%d] = %v, dense fold %v — not bit-identical", i, got[i], want[i])
		}
	}
	rep.MatVecExact = true

	rep.MatVecReps = 20
	start = time.Now()
	for r := 0; r < rep.MatVecReps; r++ {
		if _, err := sp.MatVec(x); err != nil {
			return err
		}
	}
	rep.MatVecSeconds = time.Since(start).Seconds()
	rep.MatVecsPerSec = float64(rep.MatVecReps) / rep.MatVecSeconds
	// Each kept off-diagonal entry is visited twice (symmetry).
	rep.EntriesPerSec = float64(rep.MatVecReps) * 2 * float64(rep.NNZ) / rep.MatVecSeconds

	if rep.RatiosEnforced {
		if rep.SizeRatio < rep.MinSizeRatio {
			return fmt.Errorf("sparse bench: store-size ratio %.1f× below the required %.0f× (dense %d, sparse %d bytes)",
				rep.SizeRatio, rep.MinSizeRatio, rep.DenseStoreBytes, rep.SparseStoreBytes)
		}
		if rep.BandSpeedup < rep.MinBandSpeedup {
			return fmt.Errorf("sparse bench: banded build speedup %.2f× below the required %.0f× (full %.2fs, banded %.2fs)",
				rep.BandSpeedup, rep.MinBandSpeedup, rep.SparseBuildSeconds, rep.BandedBuildSeconds)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldbench: sparse %d×%d τ=%g W=%d: size ratio %.1f× (%d → %d bytes), band speedup %.2f×, %.1f matvecs/s (%.1f Mentries/s); wrote %s\n",
		snps, samples, threshold, band, rep.SizeRatio, rep.DenseStoreBytes, rep.SparseStoreBytes,
		rep.BandSpeedup, rep.MatVecsPerSec, rep.EntriesPerSec/1e6, path)
	return nil
}

// denseFoldMatVec computes R·x by materializing the statistic rows with
// the same Exact triangular scan the sparse builder rides and folding
// the |v| ≥ τ entries in ascending-j order — the exact fold order the
// sparse matvec commits to, so the comparison can demand bit equality.
func denseFoldMatVec(g *bitmat.Matrix, x []float64, threshold float64) ([]float64, error) {
	n := g.SNPs
	dense := make([]float64, n*n)
	opt := core.StreamOptions{Triangular: true, Exact: true, StripeRows: 256}
	opt.Measures = core.MeasureR2
	err := core.Stream(g, opt, func(i, j0 int, row []float64) {
		for k, v := range row {
			dense[i*n+j0+k] = v
			dense[(j0+k)*n+i] = v
		}
	})
	if err != nil {
		return nil, fmt.Errorf("sparse bench: dense reference scan: %w", err)
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < n; j++ {
			if v := dense[i*n+j]; math.Abs(v) >= threshold {
				acc += v * x[j]
			}
		}
		y[i] = acc
	}
	return y, nil
}
