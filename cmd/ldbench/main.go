// Command ldbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ldbench [flags] <experiment>...
//
// Experiments: fig3 fig4 table1 table2 table3 fig5 simd gaps fsm tanimoto
// ablation popcount all
//
// Flags:
//
//	-scale N    divide the paper's dataset dimensions by N (default 10;
//	            use -scale 1 for the full-size runs, which take minutes)
//	-threads    comma-separated thread grid for the comparison tables
//	            (default 1,2,4,8,12 as in the paper)
//	-reps N     best-of repetitions for the peak-fraction figures
//	-csv        emit CSV instead of aligned tables
//	-json PATH  also write a machine-readable BENCH_ld.json benchmark
//	            (shape, threads, triples/sec, speedup vs Reference); with
//	            -json, the experiment list may be empty
//	-epilogue MODE        fused (default) or split count-to-measure
//	                      conversion for the experiments' LD pipeline
//	-epilogue-json PATH   write a fused-vs-split end-to-end benchmark
//	                      (BENCH_epilogue.json); with it, the experiment
//	                      list may be empty
//	-write-tune-profile PATH   run the joint autotuner (kernel shape ×
//	                      popcount strategy × blocking × epilogue ×
//	                      threads) and persist the winner as a per-host
//	                      profile for ldserver/ldstore -tune-profile;
//	                      with it, the experiment list may be empty
//	-tune-budget D        autotuner measurement budget (default 2s)
//	-store-json PATH      generate a .ldbm dataset on disk (never
//	                      resident), build a tile store from it out of
//	                      core, and write the build-throughput +
//	                      prefetch-stall benchmark (BENCH_store.json);
//	                      the input is held at 2× the allocation budget,
//	                      which is enforced at full size. With it, the
//	                      experiment list may be empty. -store-window
//	                      sets the I/O panel width.
//	-cluster-json PATH    boot an in-process 2-strip × 2-replica cluster,
//	                      drive randomized load while killing one replica
//	                      mid-run, and write the resilience benchmark
//	                      (BENCH_cluster.json: sustained QPS, tail
//	                      latency, zero failures/partials, result-cache
//	                      probe); with it, the experiment list may be
//	                      empty. -cluster-duration and -cluster-workers
//	                      size the run.
//	-sparse-json PATH     build one dataset as a dense LDTS store, a
//	                      threshold-pruned sparse LDSS store, and a
//	                      banded LDSS store; verify the sparse R·v
//	                      matvec bit-identical to a dense fold over the
//	                      kept entries; and write the store-size ratio,
//	                      banded build speedup, and matvec throughput
//	                      (BENCH_sparse.json); with it, the experiment
//	                      list may be empty
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/experiments"
	"ldgemm/internal/harness"
	"ldgemm/internal/popsim"
)

var experimentOrder = []string{
	"fig3", "fig4", "table1", "table2", "table3", "fig5",
	"simd", "gaps", "fsm", "tanimoto", "ablation", "popcount", "tuned", "banded",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ldbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ldbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 10, "divide the paper's dataset dimensions by this factor (1 = full size)")
	threadsFlag := fs.String("threads", "1,2,4,8,12", "comma-separated thread counts for comparison tables")
	reps := fs.Int("reps", 3, "best-of repetitions for peak-fraction figures")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonPath := fs.String("json", "", "write a machine-readable benchmark to this path (e.g. BENCH_ld.json)")
	epilogue := fs.String("epilogue", "fused",
		"count-to-measure epilogue for the experiments: fused (in-driver, default) or split (legacy two-phase)")
	epilogueJSON := fs.String("epilogue-json", "",
		"write a fused-vs-split epilogue benchmark to this path (e.g. BENCH_epilogue.json); with it, the experiment list may be empty")
	writeProfile := fs.String("write-tune-profile", "",
		"run the autotuner and persist the winner as a per-host profile at this path (loadable via ldserver/ldstore -tune-profile); with it, the experiment list may be empty")
	tuneBudget := fs.Duration("tune-budget", 2*time.Second, "autotuner measurement budget for -write-tune-profile")
	storeJSON := fs.String("store-json", "",
		"write an out-of-core store-build benchmark to this path (e.g. BENCH_store.json); with it, the experiment list may be empty")
	storeWindow := fs.Int("store-window", 0, "I/O column-panel width in SNPs for -store-json (0 = default 256)")
	clusterJSON := fs.String("cluster-json", "",
		"write a replica-cluster resilience benchmark to this path (e.g. BENCH_cluster.json); with it, the experiment list may be empty")
	clusterDuration := fs.Duration("cluster-duration", 6*time.Second,
		"load window for -cluster-json; one replica is killed halfway through")
	clusterWorkers := fs.Int("cluster-workers", 8, "concurrent client workers for -cluster-json")
	sparseJSON := fs.String("sparse-json", "",
		"write a sparse/banded tier benchmark to this path (e.g. BENCH_sparse.json); with it, the experiment list may be empty")
	fs.Usage = func() {
		fmt.Fprintf(stderr,
			"usage: ldbench [flags] <experiment>...\nexperiments: %s all\nflags:\n",
			strings.Join(experimentOrder, " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	var emode core.EpilogueMode
	switch *epilogue {
	case "fused", "":
		emode = core.EpilogueAuto
	case "split":
		emode = core.EpilogueSplit
	default:
		return fmt.Errorf("-epilogue must be \"fused\" or \"split\", got %q", *epilogue)
	}

	names := fs.Args()
	if len(names) == 0 && *jsonPath == "" && *epilogueJSON == "" && *writeProfile == "" && *clusterJSON == "" && *storeJSON == "" && *sparseJSON == "" {
		fs.Usage()
		return fmt.Errorf("no experiment named")
	}
	if len(names) == 1 && names[0] == "all" {
		names = experimentOrder
	}

	threads, err := parseThreads(*threadsFlag)
	if err != nil {
		return err
	}
	if *writeProfile != "" {
		if err := writeTuneProfile(*writeProfile, *tuneBudget, stderr); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, *scale, threads, stderr); err != nil {
			return err
		}
	}
	if *epilogueJSON != "" {
		if err := writeEpilogueJSON(*epilogueJSON, *scale, threads, stderr); err != nil {
			return err
		}
	}
	if *storeJSON != "" {
		if err := writeStoreJSON(*storeJSON, *scale, *storeWindow, stderr); err != nil {
			return err
		}
	}
	if *clusterJSON != "" {
		if err := writeClusterJSON(*clusterJSON, *scale, *clusterDuration, *clusterWorkers, stderr); err != nil {
			return err
		}
	}
	if *sparseJSON != "" {
		if err := writeSparseJSON(*sparseJSON, *scale, stderr); err != nil {
			return err
		}
	}
	if len(names) == 0 {
		return nil
	}
	fmt.Fprintf(stderr, "calibrating host peak... ")
	peak := harness.CalibratePeak(300 * time.Millisecond)
	fmt.Fprintf(stderr, "%.3f Gtriples/s\n", peak/1e9)
	cfg := experiments.Config{Scale: *scale, Threads: threads, Reps: *reps, Peak: peak, Epilogue: emode}

	for _, name := range names {
		tbl, err := dispatch(name, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *csv {
			if err := tbl.CSV(stdout); err != nil {
				return err
			}
		} else {
			if err := tbl.Render(stdout); err != nil {
				return err
			}
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func dispatch(name string, cfg experiments.Config) (*harness.Table, error) {
	switch name {
	case "fig3":
		return experiments.Fig3(cfg)
	case "fig4":
		return experiments.Fig4(cfg)
	case "table1":
		return experiments.ComparisonTable(popsim.DatasetA, cfg)
	case "table2":
		return experiments.ComparisonTable(popsim.DatasetB, cfg)
	case "table3":
		return experiments.ComparisonTable(popsim.DatasetC, cfg)
	case "fig5":
		return experiments.Fig5(cfg)
	case "simd":
		return experiments.SIMD(cfg)
	case "gaps":
		return experiments.Gaps(cfg)
	case "fsm":
		return experiments.FSM(cfg)
	case "tanimoto":
		return experiments.Tanimoto(cfg)
	case "ablation":
		return experiments.Ablation(cfg)
	case "popcount":
		return experiments.PopcountAblation(cfg)
	case "tuned":
		return experiments.Tuned(cfg)
	case "banded":
		return experiments.Banded(cfg)
	default:
		return nil, fmt.Errorf("unknown experiment (have: %s all)", strings.Join(experimentOrder, " "))
	}
}

// benchRun is one threads point of the JSON benchmark.
type benchRun struct {
	Threads            int     `json:"threads"`
	TriplesPerSec      float64 `json:"triples_per_sec"`
	SpeedupVsReference float64 `json:"speedup_vs_reference"`
}

// kernelPoint is one k (sample words) column of the popcount-strategy
// benchmark: the scalar micro-kernel against the auto-dispatched winner
// on the same problem, with the count matrices asserted equal.
type kernelPoint struct {
	KWords             int     `json:"k_words"`
	Samples            int     `json:"samples"`
	Variant            string  `json:"variant"`
	Popcount           string  `json:"popcount"`
	ScalarGcellsPerSec float64 `json:"scalar_gcells_per_sec"`
	AutoGcellsPerSec   float64 `json:"auto_gcells_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// benchReport is the BENCH_ld.json schema: the perf trajectory tracked
// across PRs.
type benchReport struct {
	SNPs                   int        `json:"snps"`
	Samples                int        `json:"samples"`
	Words                  int        `json:"words"`
	ReferenceTriplesPerSec float64    `json:"reference_triples_per_sec"`
	Runs                   []benchRun `json:"runs"`
	// Kernel is the scalar-vs-batched dispatch trajectory across k, on a
	// single thread (the per-core story, as in the paper's peak analysis).
	Kernel []kernelPoint `json:"kernel"`
}

// writeBenchJSON measures the blocked Syrk against Reference on a probe
// matrix sized by scale and writes the machine-readable report.
func writeBenchJSON(path string, scale int, threads []int, stderr io.Writer) error {
	snps := max(64, 4096/scale)
	samples := max(128, 2048/scale)
	g, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: 1})
	if err != nil {
		return err
	}
	c := make([]uint32, snps*snps)
	// Syrk fills the upper triangle: n(n+1)/2 SNP pairs, Words words each.
	triangle := float64(snps) * float64(snps+1) / 2 * float64(g.Words)
	full := float64(snps) * float64(snps) * float64(g.Words)

	clear(c)
	start := time.Now()
	if err := blis.Reference(g, g, c, snps); err != nil {
		return err
	}
	refRate := full / time.Since(start).Seconds()

	rep := benchReport{
		SNPs: snps, Samples: samples, Words: g.Words,
		ReferenceTriplesPerSec: refRate,
	}
	for _, t := range threads {
		clear(c)
		start := time.Now()
		if err := blis.Syrk(blis.Config{Threads: t}, g, c, snps, false); err != nil {
			return err
		}
		rate := triangle / time.Since(start).Seconds()
		rep.Runs = append(rep.Runs, benchRun{
			Threads: t, TriplesPerSec: rate, SpeedupVsReference: rate / refRate,
		})
	}
	kernel, err := benchKernelDispatch(scale, stderr)
	if err != nil {
		return err
	}
	rep.Kernel = kernel

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldbench: wrote %s (%d×%d, %d thread points, %d kernel points)\n",
		path, snps, samples, len(threads), len(kernel))
	return nil
}

// benchKernelDispatch measures the scalar micro-kernel against the
// auto-dispatched popcount strategy across k ∈ {4, 16, 64, 256} sample
// words on the 8192-SNP acceptance shape (divided by scale). Short k must
// dispatch back to scalar — the speedup column there records the absence
// of a regression, not a win. Each point asserts the two count matrices
// are identical before timing is believed.
func benchKernelDispatch(scale int, stderr io.Writer) ([]kernelPoint, error) {
	snps := max(64, 8192/scale)
	var points []kernelPoint
	for _, kw := range []int{4, 16, 64, 256} {
		samples := kw * 64
		g, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: 3})
		if err != nil {
			return nil, err
		}
		cells := float64(snps) * float64(snps+1) / 2 * float64(g.Words)
		scalarC := make([]uint32, snps*snps)
		autoC := make([]uint32, snps*snps)

		start := time.Now()
		if err := blis.Syrk(blis.Config{Threads: 1, Popcount: blis.PopcountScalar}, g, scalarC, snps, false); err != nil {
			return nil, err
		}
		scalarRate := cells / time.Since(start).Seconds()

		start = time.Now()
		if err := blis.Syrk(blis.Config{Threads: 1}, g, autoC, snps, false); err != nil {
			return nil, err
		}
		autoRate := cells / time.Since(start).Seconds()
		st := blis.ReadStats()

		for i := range autoC {
			if autoC[i] != scalarC[i] {
				return nil, fmt.Errorf("kernel bench k=%d: auto dispatch diverged from scalar at cell %d (%d != %d)",
					kw, i, autoC[i], scalarC[i])
			}
		}
		points = append(points, kernelPoint{
			KWords: kw, Samples: samples,
			Variant: st.Variant, Popcount: st.Popcount,
			ScalarGcellsPerSec: scalarRate / 1e9,
			AutoGcellsPerSec:   autoRate / 1e9,
			Speedup:            autoRate / scalarRate,
		})
		fmt.Fprintf(stderr, "ldbench: kernel k=%d words: scalar %.3f auto %.3f Gcells/s (%.2fx, %s/%s)\n",
			kw, scalarRate/1e9, autoRate/1e9, autoRate/scalarRate, st.Variant, st.Popcount)
	}
	return points, nil
}

// writeTuneProfile runs the joint autotuner and persists the winner as a
// per-host profile the serving binaries load via -tune-profile.
func writeTuneProfile(path string, budget time.Duration, stderr io.Writer) error {
	res, err := blis.Tune(blis.TuneOptions{
		Budget:      budget,
		MaxThreads:  runtime.NumCPU(),
		ProfilePath: path,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldbench: tuned %d configs; winner %s/%s MC/NC/KC %d/%d/%d at %.3f Gtriples/s; profile written to %s\n",
		res.Evaluated, res.Variant, res.Popcount,
		res.Config.MC, res.Config.NC, res.Config.KC,
		res.TriplesPerSecond/1e9, path)
	return nil
}

// epiloguePoint is one thread count of the fused-vs-split epilogue
// benchmark: end-to-end all-pairs r² (core.Matrix) wall time and heap
// allocation under each mode.
type epiloguePoint struct {
	Threads         int     `json:"threads"`
	FusedSeconds    float64 `json:"fused_seconds"`
	SplitSeconds    float64 `json:"split_seconds"`
	FusedAllocBytes uint64  `json:"fused_alloc_bytes"`
	SplitAllocBytes uint64  `json:"split_alloc_bytes"`
	Speedup         float64 `json:"speedup"`
}

// epilogueReport is the BENCH_epilogue.json schema.
type epilogueReport struct {
	SNPs    int `json:"snps"`
	Samples int `json:"samples"`
	Words   int `json:"words"`
	// CountsBytes is the dense n²·4-byte count matrix the split pipeline
	// materializes per call and the fused pipeline never allocates.
	CountsBytes uint64          `json:"counts_bytes"`
	Points      []epiloguePoint `json:"points"`
}

// measureMatrix times one warmed end-to-end core.Matrix call and reports
// its heap allocation. A prior call warms the arena pool so the fused
// number reflects steady-state serving, not first-call scratch growth.
func measureMatrix(g *bitmat.Matrix, opt core.Options) (time.Duration, uint64, error) {
	if _, err := core.Matrix(g, opt); err != nil {
		return 0, 0, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if _, err := core.Matrix(g, opt); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, m1.TotalAlloc - m0.TotalAlloc, nil
}

// writeEpilogueJSON benchmarks all-pairs r² end to end — blocked SYRK
// plus the count-to-measure conversion — with the fused and the split
// epilogue on the acceptance shape (8192/scale SNPs) across the thread
// grid, and writes the machine-readable report.
func writeEpilogueJSON(path string, scale int, threads []int, stderr io.Writer) error {
	snps := max(64, 8192/scale)
	samples := max(128, 2048/scale)
	g, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: 1})
	if err != nil {
		return err
	}
	rep := epilogueReport{
		SNPs: snps, Samples: samples, Words: g.Words,
		CountsBytes: uint64(snps) * uint64(snps) * 4,
	}
	for _, t := range threads {
		base := core.Options{Measures: core.MeasureR2, Blis: blis.Config{Threads: t}}
		fusedOpt := base
		fusedOpt.Epilogue = core.EpilogueFused
		splitOpt := base
		splitOpt.Epilogue = core.EpilogueSplit
		fw, fa, err := measureMatrix(g, fusedOpt)
		if err != nil {
			return err
		}
		sw, sa, err := measureMatrix(g, splitOpt)
		if err != nil {
			return err
		}
		rep.Points = append(rep.Points, epiloguePoint{
			Threads:      t,
			FusedSeconds: fw.Seconds(), SplitSeconds: sw.Seconds(),
			FusedAllocBytes: fa, SplitAllocBytes: sa,
			Speedup: sw.Seconds() / fw.Seconds(),
		})
		fmt.Fprintf(stderr, "ldbench: epilogue %d threads: fused %.3fs split %.3fs (%.2fx)\n",
			t, fw.Seconds(), sw.Seconds(), sw.Seconds()/fw.Seconds())
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldbench: wrote %s (%d×%d, %d thread points)\n",
		path, snps, samples, len(rep.Points))
	return nil
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		t, err := strconv.Atoi(f)
		if err != nil || t < 1 {
			return nil, fmt.Errorf("invalid thread count %q", f)
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty thread list")
	}
	return out, nil
}
