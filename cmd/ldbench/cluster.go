package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldgemm/internal/cluster"
	"ldgemm/internal/popsim"
	"ldgemm/internal/server"
)

// clusterReport is the BENCH_cluster.json schema: sustained throughput
// and tail latency of a 2-strip × 2-replica cluster while one replica
// is killed mid-run, plus the correctness and caching evidence.
type clusterReport struct {
	SNPs             int     `json:"snps"`
	Samples          int     `json:"samples"`
	Strips           int     `json:"strips"`
	ReplicasPerStrip int     `json:"replicas_per_strip"`
	Workers          int     `json:"workers"`
	DurationSec      float64 `json:"duration_sec"`
	KilledReplica    string  `json:"killed_replica"`
	KillAtSec        float64 `json:"kill_at_sec"`

	Requests int64   `json:"requests"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`

	// Failures and Partials must both be zero: a strip with a surviving
	// replica never errors and never degrades. IdentityChecked responses
	// were additionally compared field-for-field against a single
	// unsharded node; IdentityMismatches must be zero.
	Failures           int64 `json:"failures"`
	Partials           int64 `json:"partials"`
	IdentityChecked    int64 `json:"identity_checked"`
	IdentityMismatches int64 `json:"identity_mismatches"`

	// CacheProbeZeroRoundTrips: after the run, a repeated identical
	// region request was answered with zero shard round trips.
	CacheProbeZeroRoundTrips bool  `json:"cache_probe_zero_round_trips"`
	CacheHits                int64 `json:"result_cache_hits"`
	CacheMisses              int64 `json:"result_cache_misses"`
	Coalesced                int64 `json:"coalesced_requests"`
}

// localServer is one in-process HTTP server bound to a loopback port —
// real sockets, so killing a replica severs live connections exactly as
// a process death would.
type localServer struct {
	srv *http.Server
	url string
}

func serveLocal(h http.Handler) (*localServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return &localServer{srv: srv, url: "http://" + ln.Addr().String()}, nil
}

func (s *localServer) kill() { s.srv.Close() }

// countLD wraps a shard handler, counting round trips to the heavy LD
// endpoints so the cache probe can assert "zero shard round trips".
func countLD(h http.Handler, n *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/ld") {
			n.Add(1)
		}
		h.ServeHTTP(w, r)
	})
}

// writeClusterJSON boots a 2-strip × 2-replica cluster plus a single
// unsharded reference node, drives randomized pair/region/top load for
// the given window, kills one replica halfway through, and writes the
// resilience report. The run fails if any request errors, degrades to
// partial, or diverges from the single node.
func writeClusterJSON(path string, scale int, duration time.Duration, workers int, stderr io.Writer) error {
	snps := max(160, 1600/scale)
	samples := max(96, 960/scale)
	g, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: 11})
	if err != nil {
		return err
	}
	mid := snps / 2
	scfg := func(lo, hi int) server.Config {
		return server.Config{MaxRegionSNPs: 128, MaxTopK: 100, Threads: 2, ShardStart: lo, ShardEnd: hi}
	}

	var shardCalls atomic.Int64
	strips := [2][2]*localServer{}
	for si, rng := range [][2]int{{0, mid}, {mid, snps}} {
		for ri := 0; ri < 2; ri++ {
			ls, err := serveLocal(countLD(server.New(g, scfg(rng[0], rng[1])), &shardCalls))
			if err != nil {
				return err
			}
			defer ls.kill()
			strips[si][ri] = ls
		}
	}
	single, err := serveLocal(server.New(g, server.Config{MaxRegionSNPs: 128, MaxTopK: 100, Threads: 2}))
	if err != nil {
		return err
	}
	defer single.kill()

	co, err := cluster.New(context.Background(), []string{
		strips[0][0].url + "|" + strips[0][1].url,
		strips[1][0].url + "|" + strips[1][1].url,
	}, cluster.Config{
		ShardTimeout: 10 * time.Second, Retries: 1, RetryBackoff: 5 * time.Millisecond,
		BreakerFailures: 3, BreakerCooldown: 500 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer co.Close()
	front, err := serveLocal(co)
	if err != nil {
		return err
	}
	defer front.kill()

	hc := &http.Client{Timeout: 30 * time.Second}
	fetch := func(q string) (int, string, []byte, error) {
		resp, err := hc.Get(front.url + q)
		if err != nil {
			return 0, "", nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("X-LD-Shards-Failed"), body, err
	}

	killed := strips[0][1]
	killAt := duration / 2
	time.AfterFunc(killAt, killed.kill)

	fmt.Fprintf(stderr, "ldbench: cluster bench: %d SNPs × %d samples, 2 strips × 2 replicas, %d workers for %s (killing %s at %s)\n",
		snps, samples, workers, duration, killed.url, killAt)

	var requests, failures, partials, checked, mismatches atomic.Int64
	lats := make([][]time.Duration, workers)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for seq := 0; time.Now().Before(deadline); seq++ {
				var q string
				switch r := rng.Intn(10); {
				case r < 7: // region, randomized so the result cache can't absorb the load
					start := rng.Intn(snps - 64)
					q = fmt.Sprintf("/api/ld/region?start=%d&end=%d&measure=r2", start, start+16+rng.Intn(48))
				case r < 9: // pair
					i, j := rng.Intn(snps), rng.Intn(snps)
					if i == j {
						j = (j + 1) % snps
					}
					q = fmt.Sprintf("/api/ld?i=%d&j=%d", i, j)
				default: // top
					q = fmt.Sprintf("/api/ld/top?k=%d", 5+rng.Intn(40))
				}
				t0 := time.Now()
				code, failedHdr, body, err := fetch(q)
				lats[w] = append(lats[w], time.Since(t0))
				requests.Add(1)
				if err != nil || code != http.StatusOK {
					failures.Add(1)
					continue
				}
				if failedHdr != "" {
					partials.Add(1)
					continue
				}
				if seq%8 == 0 { // spot-check bit-identity against the single node
					checked.Add(1)
					sresp, err := hc.Get(single.url + q)
					if err != nil {
						mismatches.Add(1)
						continue
					}
					sbody, _ := io.ReadAll(sresp.Body)
					sresp.Body.Close()
					var got, want map[string]any
					if json.Unmarshal(body, &got) != nil || json.Unmarshal(sbody, &want) != nil ||
						!reflect.DeepEqual(got, want) {
						mismatches.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Cache probe: a query shape the load loop never issues (measure=dprime),
	// twice. The repeat must make zero shard round trips.
	probe := "/api/ld/region?start=1&end=33&measure=dprime"
	if code, _, _, err := fetch(probe); err != nil || code != http.StatusOK {
		return fmt.Errorf("cluster bench: cache probe failed: code %d err %v", code, err)
	}
	before := shardCalls.Load()
	code, _, _, err := fetch(probe)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("cluster bench: cache probe repeat failed: code %d err %v", code, err)
	}
	probeClean := shardCalls.Load() == before

	var vars struct {
		CacheHits   int64 `json:"result_cache_hits"`
		CacheMisses int64 `json:"result_cache_misses"`
		Coalesced   int64 `json:"coalesced_requests"`
	}
	if _, _, body, err := fetch("/debug/vars"); err == nil {
		json.Unmarshal(body, &vars)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))]) / float64(time.Millisecond)
	}

	rep := clusterReport{
		SNPs: snps, Samples: samples, Strips: 2, ReplicasPerStrip: 2,
		Workers: workers, DurationSec: duration.Seconds(),
		KilledReplica: killed.url, KillAtSec: killAt.Seconds(),
		Requests: requests.Load(), QPS: float64(requests.Load()) / duration.Seconds(),
		P50Ms: pct(0.50), P95Ms: pct(0.95), P99Ms: pct(0.99),
		Failures: failures.Load(), Partials: partials.Load(),
		IdentityChecked: checked.Load(), IdentityMismatches: mismatches.Load(),
		CacheProbeZeroRoundTrips: probeClean,
		CacheHits:                vars.CacheHits, CacheMisses: vars.CacheMisses, Coalesced: vars.Coalesced,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldbench: cluster bench: %d requests, %.0f QPS, p50/p95/p99 %.1f/%.1f/%.1f ms, %d failures, %d partials, %d/%d identity checks clean, cache probe zero-round-trips=%t → %s\n",
		rep.Requests, rep.QPS, rep.P50Ms, rep.P95Ms, rep.P99Ms,
		rep.Failures, rep.Partials, rep.IdentityChecked-rep.IdentityMismatches, rep.IdentityChecked, probeClean, path)
	if rep.Failures > 0 || rep.Partials > 0 || rep.IdentityMismatches > 0 || !probeClean {
		return fmt.Errorf("cluster bench: resilience contract violated: %d failures, %d partials, %d mismatches, cache probe clean=%t",
			rep.Failures, rep.Partials, rep.IdentityMismatches, probeClean)
	}
	return nil
}
