package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/popsim"
)

// storeBudgetFloor is the smallest allocation budget the benchmark will
// actually enforce: below it the build's fixed overheads (the 1 MiB
// output buffer, the double-buffered panel pools) dominate the matrix and
// the out-of-core claim is not being tested, only exercised.
const storeBudgetFloor = 8 << 20

// storeReport is the BENCH_store.json schema: out-of-core tile-store
// build throughput and I/O-pipeline counters on an input at least twice
// the allocation budget, the acceptance shape of the genome-scale path.
type storeReport struct {
	SNPs         int `json:"snps"`
	Samples      int `json:"samples"`
	Words        int `json:"words"`
	TileSize     int `json:"tile_size"`
	IOWindowSNPs int `json:"io_window_snps"`
	// MatrixBytes is the on-disk bit-matrix size; BudgetBytes the heap
	// allocation ceiling (matrix/2, so the input is 2× the budget);
	// AllocBytes what the build actually allocated. WithinBudget is
	// enforced (the benchmark fails) whenever the budget is large enough
	// to be meaningful.
	MatrixBytes     int64   `json:"matrix_bytes"`
	BudgetBytes     int64   `json:"budget_bytes"`
	AllocBytes      uint64  `json:"alloc_bytes"`
	WithinBudget    bool    `json:"within_budget"`
	BudgetEnforced  bool    `json:"budget_enforced"`
	GenerateSeconds float64 `json:"generate_seconds"`
	BuildSeconds    float64 `json:"build_seconds"`
	Tiles           int     `json:"tiles"`
	FileBytes       int64   `json:"file_bytes"`
	// PairsPerSec counts SNP pairs of the triangle; TriplesPerSec the
	// paper's (pair × word) throughput unit.
	PairsPerSec   float64 `json:"pairs_per_sec"`
	TriplesPerSec float64 `json:"triples_per_sec"`
	// The blis I/O-pipeline counters for this build: panel fetches issued
	// by the prefetcher, bytes they carried, and how long the compute loop
	// actually blocked waiting on them.
	PanelsRead            uint64  `json:"panels_read"`
	PanelBytesRead        uint64  `json:"panel_bytes_read"`
	PrefetchStallNanos    uint64  `json:"prefetch_stall_nanos"`
	PrefetchStallFraction float64 `json:"prefetch_stall_fraction"`
}

// writeStoreJSON generates a .ldbm dataset sized by scale (streamed to
// disk, never resident), builds a tile store from it out of core with
// windowed reads, and writes the machine-readable report. The matrix is
// kept at 2× the allocation budget; at full size the budget is enforced,
// so a regression that materializes the matrix or the result fails the
// benchmark rather than just inflating a number.
func writeStoreJSON(path string, scale, ioWindow int, stderr io.Writer) error {
	snps := max(512, 4096/scale)
	samples := max(2048, 131072/scale)
	const tile = 128
	if ioWindow <= 0 {
		ioWindow = 128
	}

	dir, err := os.MkdirTemp("", "ldbench-store")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ldbmPath := filepath.Join(dir, "g.ldbm")

	genStart := time.Now()
	if err := popsim.MosaicToLDBM(ldbmPath, snps, samples, popsim.MosaicConfig{Seed: 1}, 1024); err != nil {
		return err
	}
	genSecs := time.Since(genStart).Seconds()

	src, err := bitmat.OpenFile(ldbmPath, false)
	if err != nil {
		return err
	}
	defer src.Close()
	rep := storeReport{
		SNPs: snps, Samples: samples, Words: src.Words(),
		TileSize: tile, IOWindowSNPs: ioWindow,
		MatrixBytes:     src.MatrixBytes(),
		GenerateSeconds: genSecs,
	}
	rep.BudgetBytes = rep.MatrixBytes / 2
	rep.BudgetEnforced = rep.BudgetBytes >= storeBudgetFloor

	storePath := filepath.Join(dir, "g.ldts")
	before := blis.ReadStats()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	buildStart := time.Now()
	res, err := ldstore.BuildFileFromSource(storePath, src, ldstore.SourceBuildOptions{
		BuildOptions: ldstore.BuildOptions{TileSize: tile},
		IOPanelSNPs:  ioWindow,
	})
	if err != nil {
		return err
	}
	buildSecs := time.Since(buildStart).Seconds()
	runtime.ReadMemStats(&m1)
	after := blis.ReadStats()

	rep.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
	rep.WithinBudget = rep.AllocBytes <= uint64(rep.BudgetBytes)
	rep.BuildSeconds = buildSecs
	rep.Tiles = res.Tiles
	rep.FileBytes = res.FileBytes
	pairs := float64(snps) * float64(snps+1) / 2
	rep.PairsPerSec = pairs / buildSecs
	rep.TriplesPerSec = pairs * float64(src.Words()) / buildSecs
	rep.PanelsRead = after.PanelsRead - before.PanelsRead
	rep.PanelBytesRead = after.PanelBytesRead - before.PanelBytesRead
	rep.PrefetchStallNanos = after.PrefetchStallNanos - before.PrefetchStallNanos
	rep.PrefetchStallFraction = float64(rep.PrefetchStallNanos) / (buildSecs * 1e9)

	// The store must open and agree on identity before the numbers count.
	s, err := ldstore.Open(storePath, ldstore.Options{})
	if err != nil {
		return fmt.Errorf("store bench: built store unreadable: %w", err)
	}
	info := s.Info()
	s.Close()
	if info.SNPs != snps {
		return fmt.Errorf("store bench: built store has %d SNPs, want %d", info.SNPs, snps)
	}
	if rep.BudgetEnforced && !rep.WithinBudget {
		return fmt.Errorf("store bench: build allocated %d bytes, budget %d (matrix %d)",
			rep.AllocBytes, rep.BudgetBytes, rep.MatrixBytes)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ldbench: store build %d×%d (matrix %d MiB, budget %d MiB, alloc %d MiB): %.2fs, %.3f Gtriples/s, stall %.1f%%; wrote %s\n",
		snps, samples, rep.MatrixBytes>>20, rep.BudgetBytes>>20, rep.AllocBytes>>20,
		buildSecs, rep.TriplesPerSec/1e9, 100*rep.PrefetchStallFraction, path)
	return nil
}
