module ldgemm

go 1.24
